// Edge monitor: the full deployment loop of Section 4, durable streaming
// edition.
//
// A "server" side encodes the ontology once; an edge instance then ingests
// a continuous stream of sensor observation batches through the
// delta-overlay write path (no rebuild per batch), runs a fixed set of
// registered SPARQL queries after each batch, and emits alerts — while
// reporting the memory the store occupies and when the overlay was folded
// back into the succinct base by auto-compaction.
//
// Durability loop: every batch is group-committed to a write-ahead log on
// the (simulated) SD card before it is applied, and each compaction
// persists a base snapshot before truncating the log. Halfway through the
// stream the example pulls the plug — drops the whole in-memory store —
// and reopens from snapshot + WAL replay, proving no acknowledged
// observation was lost, then keeps streaming.
//
//   $ ./build/edge_monitor [batches] [observations_per_sensor]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "io/wal.h"
#include "util/timer.h"
#include "workloads/sensor_generator.h"

namespace {

struct RegisteredQuery {
  std::string name;
  std::string sparql;
};

}  // namespace

int main(int argc, char** argv) {
  const int batches = argc > 1 ? std::atoi(argv[1]) : 20;
  const int observations = argc > 2 ? std::atoi(argv[2]) : 25;

  const sedge::ontology::Ontology onto =
      sedge::workloads::SensorGraphGenerator::BuildOntology();

  // What survives a power cut: the WAL device (SD-card latencies) and the
  // snapshot the compaction callback persists. Everything else is RAM.
  sedge::io::SimulatedBlockDevice wal_device(/*read_latency_us=*/20.0,
                                             /*write_latency_us=*/55.0);
  std::string snapshot_ttl;

  // Queries registered on this edge instance: anomaly detection plus two
  // routine monitoring queries.
  const std::vector<RegisteredQuery> queries = {
      {"pressure-anomaly",
       sedge::workloads::SensorGraphGenerator::PressureAnomalyQuery()},
      {"observation-count",
       "PREFIX sosa: <http://www.w3.org/ns/sosa/>\n"
       "SELECT ?o WHERE { ?o a sosa:Observation }"},
      {"sensors-per-platform",
       "PREFIX sosa: <http://www.w3.org/ns/sosa/>\n"
       "SELECT DISTINCT ?x ?s WHERE { ?x a sosa:Platform ; "
       "sosa:hosts ?s }"},
  };

  // Brings an edge instance up from the durable state: ontology + last
  // snapshot + replay of the acknowledged WAL tail.
  std::unique_ptr<sedge::Database> db;
  std::unique_ptr<sedge::io::WriteAheadLog> wal;
  const auto open_durable = [&]() -> sedge::Status {
    db = std::make_unique<sedge::Database>();
    db->LoadOntology(onto);
    db->set_compaction_ratio(0.25);
    if (!snapshot_ttl.empty()) {
      SEDGE_RETURN_NOT_OK(db->LoadDataTurtle(snapshot_ttl));
    }
    db->set_compaction_callback(
        [&snapshot_ttl](const sedge::Database& inner) {
          snapshot_ttl = inner.store().ExportGraph().ToNTriples();
          return sedge::Status::OK();
        });
    wal = std::make_unique<sedge::io::WriteAheadLog>(&wal_device);
    SEDGE_RETURN_NOT_OK(wal->Open());
    return db->AttachWal(wal.get());
  };
  if (const sedge::Status st = open_durable(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // --- bootstrap: the static station/sensor topology, inserted once ---
  sedge::workloads::SensorConfig config;
  config.seed = 31337;
  config.observations_per_sensor = observations;
  config.anomaly_rate = 0.05;
  if (const sedge::Status st =
          db->Insert(sedge::workloads::SensorGraphGenerator::GenerateTopology(
              config));
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("edge instance up; %zu queries registered, streaming %d "
              "batches with WAL durability\n\n",
              queries.size(), batches);
  uint64_t max_memory = 0;
  double total_ms = 0.0;
  int alerts = 0;
  int compactions = 0;
  uint64_t last_generation = db->store_generation();
  const int crash_at = batches / 2;
  for (int i = 0; i < batches; ++i) {
    if (i == crash_at && crash_at > 0) {
      // --- simulated power cut: the in-memory store evaporates; only the
      // WAL device and the last compaction snapshot survive. ---
      const uint64_t pre_crash_triples = db->num_triples();
      db.reset();
      wal.reset();
      if (const sedge::Status st = open_durable(); !st.ok()) {
        std::fprintf(stderr, "recovery: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("batch %2d: POWER CUT -> reopened from snapshot (%zu B) + "
                  "WAL replay: %llu/%llu triples recovered\n",
                  i, snapshot_ttl.size(),
                  static_cast<unsigned long long>(db->num_triples()),
                  static_cast<unsigned long long>(pre_crash_triples));
      if (db->num_triples() != pre_crash_triples) {
        std::fprintf(stderr, "recovery lost acknowledged data!\n");
        return 1;
      }
      last_generation = db->store_generation();
    }
    const sedge::rdf::Graph batch =
        sedge::workloads::SensorGraphGenerator::GenerateObservationBatch(
            config, i);

    sedge::WallTimer timer;
    if (const sedge::Status st = db->Insert(batch); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    if (db->store_generation() != last_generation) {
      last_generation = db->store_generation();
      ++compactions;
      std::printf("batch %2d: auto-compaction folded the overlay "
                  "(store generation %llu, %llu triples; snapshot %zu B, "
                  "WAL truncated to epoch %llu)\n",
                  i, static_cast<unsigned long long>(last_generation),
                  static_cast<unsigned long long>(db->num_triples()),
                  snapshot_ttl.size(),
                  static_cast<unsigned long long>(wal->epoch()));
    }
    for (const RegisteredQuery& q : queries) {
      const auto result = db->Query(q.sparql);
      if (!result.ok()) {
        std::fprintf(stderr, "%s: %s\n", q.name.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      if (q.name == "pressure-anomaly" && !result.value().rows.empty()) {
        alerts += static_cast<int>(result.value().size());
        std::printf("batch %2d: %zu pressure alert(s) -> notify "
                    "supervisor\n",
                    i, result.value().size());
      }
    }
    total_ms += timer.ElapsedMillis();
    max_memory = std::max(max_memory, db->store().SizeInBytes());
  }
  std::printf(
      "\nstreamed %d batches (%d observations/sensor): %d alerts,\n"
      "%d compaction(s), %llu live triples, avg %.2f ms per batch "
      "(insert + %zu queries + WAL group commit),\npeak store footprint "
      "%.1f KiB; WAL device %llu blocks, %llu block writes\n",
      batches, observations, alerts, compactions,
      static_cast<unsigned long long>(db->num_triples()),
      total_ms / std::max(batches, 1), queries.size(),
      static_cast<double>(max_memory) / 1024.0,
      static_cast<unsigned long long>(wal_device.num_blocks()),
      static_cast<unsigned long long>(wal_device.stats().writes));
  return 0;
}
