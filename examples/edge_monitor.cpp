// Edge monitor: the full deployment loop of Section 4, streaming edition.
//
// A "server" side encodes the ontology once; an edge instance then ingests
// a continuous stream of sensor observation batches through the
// delta-overlay write path (no rebuild per batch), runs a fixed set of
// registered SPARQL queries after each batch, and emits alerts — while
// reporting the memory the store occupies and when the overlay was folded
// back into the succinct base by auto-compaction.
//
//   $ ./build/edge_monitor [batches] [observations_per_sensor]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/database.h"
#include "util/timer.h"
#include "workloads/sensor_generator.h"

namespace {

struct RegisteredQuery {
  std::string name;
  std::string sparql;
};

}  // namespace

int main(int argc, char** argv) {
  const int batches = argc > 1 ? std::atoi(argv[1]) : 20;
  const int observations = argc > 2 ? std::atoi(argv[2]) : 25;

  // --- administration step (central server) ---
  sedge::Database db;
  db.LoadOntology(sedge::workloads::SensorGraphGenerator::BuildOntology());
  db.set_compaction_ratio(0.25);

  // Queries registered on this edge instance: anomaly detection plus two
  // routine monitoring queries.
  const std::vector<RegisteredQuery> queries = {
      {"pressure-anomaly",
       sedge::workloads::SensorGraphGenerator::PressureAnomalyQuery()},
      {"observation-count",
       "PREFIX sosa: <http://www.w3.org/ns/sosa/>\n"
       "SELECT ?o WHERE { ?o a sosa:Observation }"},
      {"sensors-per-platform",
       "PREFIX sosa: <http://www.w3.org/ns/sosa/>\n"
       "SELECT DISTINCT ?x ?s WHERE { ?x a sosa:Platform ; "
       "sosa:hosts ?s }"},
  };

  // --- bootstrap: the static station/sensor topology, inserted once ---
  sedge::workloads::SensorConfig config;
  config.seed = 31337;
  config.observations_per_sensor = observations;
  config.anomaly_rate = 0.05;
  if (const sedge::Status st =
          db.Insert(sedge::workloads::SensorGraphGenerator::GenerateTopology(
              config));
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("edge instance up; %zu queries registered, streaming %d "
              "batches\n\n",
              queries.size(), batches);
  uint64_t max_memory = 0;
  double total_ms = 0.0;
  int alerts = 0;
  int compactions = 0;
  uint64_t last_generation = db.store_generation();
  for (int i = 0; i < batches; ++i) {
    const sedge::rdf::Graph batch =
        sedge::workloads::SensorGraphGenerator::GenerateObservationBatch(
            config, i);

    sedge::WallTimer timer;
    if (const sedge::Status st = db.Insert(batch); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    if (db.store_generation() != last_generation) {
      last_generation = db.store_generation();
      ++compactions;
      std::printf("batch %2d: auto-compaction folded the overlay "
                  "(store generation %llu, %llu triples)\n",
                  i, static_cast<unsigned long long>(last_generation),
                  static_cast<unsigned long long>(db.num_triples()));
    }
    for (const RegisteredQuery& q : queries) {
      const auto result = db.Query(q.sparql);
      if (!result.ok()) {
        std::fprintf(stderr, "%s: %s\n", q.name.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      if (q.name == "pressure-anomaly" && !result.value().rows.empty()) {
        alerts += static_cast<int>(result.value().size());
        std::printf("batch %2d: %zu pressure alert(s) -> notify "
                    "supervisor\n",
                    i, result.value().size());
      }
    }
    total_ms += timer.ElapsedMillis();
    max_memory = std::max(max_memory, db.store().SizeInBytes());
  }
  std::printf(
      "\nstreamed %d batches (%d observations/sensor): %d alerts,\n"
      "%d compaction(s), %llu live triples, avg %.2f ms per batch "
      "(insert + %zu queries),\npeak store footprint %.1f KiB\n",
      batches, observations, alerts, compactions,
      static_cast<unsigned long long>(db.num_triples()),
      total_ms / std::max(batches, 1), queries.size(),
      static_cast<double>(max_memory) / 1024.0);
  return 0;
}
