// Edge monitor: the full deployment loop of Section 4 in miniature.
//
// A "server" side encodes the ontology once; an edge instance then
// receives a stream of graph instances, runs a fixed set of registered
// SPARQL queries once per instance (the paper's execution model), and
// emits alerts — while reporting the memory the store occupies, the
// quantity an edge device actually cares about.
//
//   $ ./build/examples/edge_monitor [instances] [observations_per_sensor]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/database.h"
#include "util/timer.h"
#include "workloads/sensor_generator.h"

namespace {

struct RegisteredQuery {
  std::string name;
  std::string sparql;
};

}  // namespace

int main(int argc, char** argv) {
  const int instances = argc > 1 ? std::atoi(argv[1]) : 20;
  const int observations = argc > 2 ? std::atoi(argv[2]) : 25;

  // --- administration step (central server) ---
  sedge::Database db;
  db.LoadOntology(sedge::workloads::SensorGraphGenerator::BuildOntology());

  // Queries registered on this edge instance: anomaly detection plus two
  // routine monitoring queries.
  const std::vector<RegisteredQuery> queries = {
      {"pressure-anomaly",
       sedge::workloads::SensorGraphGenerator::PressureAnomalyQuery()},
      {"observation-count",
       "PREFIX sosa: <http://www.w3.org/ns/sosa/>\n"
       "SELECT ?o WHERE { ?o a sosa:Observation }"},
      {"sensors-per-platform",
       "PREFIX sosa: <http://www.w3.org/ns/sosa/>\n"
       "SELECT DISTINCT ?x ?s WHERE { ?x a sosa:Platform ; "
       "sosa:hosts ?s }"},
  };

  std::printf("edge instance up; %zu queries registered\n\n", queries.size());
  uint64_t max_memory = 0;
  double total_ms = 0.0;
  int alerts = 0;
  for (int i = 0; i < instances; ++i) {
    sedge::workloads::SensorConfig config;
    config.seed = 31337 + static_cast<uint64_t>(i);
    config.observations_per_sensor = observations;
    config.anomaly_rate = 0.05;
    const sedge::rdf::Graph graph =
        sedge::workloads::SensorGraphGenerator::Generate(config);

    sedge::WallTimer timer;
    if (const sedge::Status st = db.LoadData(graph); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    for (const RegisteredQuery& q : queries) {
      const auto result = db.Query(q.sparql);
      if (!result.ok()) {
        std::fprintf(stderr, "%s: %s\n", q.name.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      if (q.name == "pressure-anomaly" && !result.value().rows.empty()) {
        alerts += static_cast<int>(result.value().size());
        std::printf("instance %2d: %zu pressure alert(s) -> notify "
                    "supervisor\n",
                    i, result.value().size());
      }
    }
    total_ms += timer.ElapsedMillis();
    max_memory = std::max(max_memory, db.store().SizeInBytes());
  }
  std::printf(
      "\nprocessed %d instances (%d observations/sensor): %d alerts,\n"
      "avg %.2f ms per instance, peak store footprint %.1f KiB\n",
      instances, observations, alerts, total_ms / instances,
      static_cast<double>(max_memory) / 1024.0);
  return 0;
}
