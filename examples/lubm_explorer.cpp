// LUBM explorer: build a university-benchmark graph and interactively
// compare query answers with reasoning on and off.
//
//   $ ./build/examples/lubm_explorer [departments]
//
// Prints the catalog queries (S/M/R) with their answer sizes, then shows
// what RDFS entailment adds to each reasoning query.

#include <cstdio>
#include <cstdlib>

#include "core/database.h"
#include "util/timer.h"
#include "workloads/lubm_generator.h"
#include "workloads/lubm_queries.h"

int main(int argc, char** argv) {
  using sedge::workloads::LubmConfig;
  using sedge::workloads::LubmGenerator;
  using sedge::workloads::LubmQueries;

  LubmConfig config;
  config.departments_per_university = argc > 1 ? std::atoi(argv[1]) : 5;

  std::printf("generating LUBM-like data (%d departments)...\n",
              config.departments_per_university);
  const sedge::rdf::Graph graph = LubmGenerator::Generate(config);

  sedge::Database db;
  db.LoadOntology(LubmGenerator::BuildOntology());
  sedge::WallTimer build_timer;
  const sedge::Status st = db.LoadData(graph);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%lu triples encoded in %.1f ms — %.1f KiB in memory "
              "(dictionary %.1f KiB, triples %.1f KiB)\n\n",
              db.num_triples(), build_timer.ElapsedMillis(),
              db.store().SizeInBytes() / 1024.0,
              db.store().DictionarySizeInBytes() / 1024.0,
              db.store().TriplesSizeInBytes() / 1024.0);

  std::printf("%-6s %-10s %-10s %-10s %s\n", "query", "plain", "reasoned",
              "derived", "time(ms)");
  for (const auto& spec : LubmQueries::All(graph)) {
    db.set_reasoning(false);
    const uint64_t plain = db.QueryCount(spec.sparql).ValueOr(0);
    db.set_reasoning(true);
    sedge::WallTimer timer;
    const uint64_t reasoned = db.QueryCount(spec.sparql).ValueOr(0);
    const double ms = timer.ElapsedMillis();
    std::printf("%-6s %-10lu %-10lu %-10lu %.2f\n", spec.id.c_str(), plain,
                reasoned, reasoned >= plain ? reasoned - plain : 0, ms);
  }

  // One decoded sample so the output shows real terms.
  db.set_reasoning(true);
  const auto sample = db.Query(
      "PREFIX lubm: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
      "SELECT ?prof ?dept WHERE { ?prof a lubm:Professor ; "
      "lubm:worksFor ?dept } LIMIT 5");
  if (sample.ok()) {
    std::printf("\nsample — professors and their departments (reasoned):\n%s",
                sample.value().ToString().c_str());
  }
  return 0;
}
