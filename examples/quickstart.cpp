// Quickstart: load an ontology and a small graph, run queries with and
// without RDFS reasoning.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/database.h"

int main() {
  sedge::Database db;

  // 1. Install the ontology (in a deployment this is encoded once on the
  //    central server and broadcast to every edge instance).
  const sedge::Status onto_status = db.LoadOntologyTurtle(R"(
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .
@prefix ex: <http://example.org/> .
ex:Device a owl:Class .
ex:Sensor rdfs:subClassOf ex:Device .
ex:PressureSensor rdfs:subClassOf ex:Sensor .
ex:TemperatureSensor rdfs:subClassOf ex:Sensor .
ex:locatedIn a owl:ObjectProperty .
ex:reading a owl:DatatypeProperty .
)");
  if (!onto_status.ok()) {
    std::fprintf(stderr, "ontology: %s\n", onto_status.ToString().c_str());
    return 1;
  }

  // 2. Load one graph instance (sensors usually stream these).
  const sedge::Status data_status = db.LoadDataTurtle(R"(
@prefix ex: <http://example.org/> .
ex:p1 a ex:PressureSensor ; ex:locatedIn ex:room1 ; ex:reading 3.7 .
ex:p2 a ex:PressureSensor ; ex:locatedIn ex:room2 ; ex:reading 5.1 .
ex:t1 a ex:TemperatureSensor ; ex:locatedIn ex:room1 ; ex:reading 21.5 .
ex:hub a ex:Device ; ex:locatedIn ex:room1 .
)");
  if (!data_status.ok()) {
    std::fprintf(stderr, "data: %s\n", data_status.ToString().c_str());
    return 1;
  }
  std::printf("loaded %lu triples (%.1f KiB in memory)\n\n",
              db.num_triples(),
              static_cast<double>(db.store().SizeInBytes()) / 1024.0);

  // 3. A reasoning query: ex:Sensor has no direct instances, but the
  //    LiteMat interval covers both sensor subclasses.
  const char* kSensors =
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?s ?room WHERE { ?s a ex:Sensor ; ex:locatedIn ?room }";
  auto result = db.Query(kSensors);
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("sensors (with reasoning):\n%s\n",
              result.value().ToString().c_str());

  db.set_reasoning(false);
  result = db.Query(kSensors);
  std::printf("sensors (reasoning off): %zu rows\n\n",
              result.ok() ? result.value().size() : 0);
  db.set_reasoning(true);

  // 4. A FILTER over the flat literal pool.
  const auto alerts = db.Query(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?s ?v WHERE { ?s a ex:PressureSensor ; ex:reading ?v . "
      "FILTER (?v > 4.5) }");
  if (alerts.ok()) {
    std::printf("pressure above 4.5 bar:\n%s",
                alerts.value().ToString().c_str());
  }
  return 0;
}
