// Water-distribution anomaly detection — the paper's motivating example
// (Section 2).
//
// A flow of SOSA/QUDT observation graphs arrives from two heterogeneous
// station profiles (Bar vs hectoPascal pressure units, different QUDT
// class annotations). One high-level SPARQL query, written against
// qudt:PressureUnit and relying on RDFS reasoning plus a unit-conversion
// BIND, detects out-of-band pressure readings across all stations — no
// per-sensor query variants needed.
//
//   $ ./build/examples/water_anomaly [num_graph_instances]

#include <cstdio>
#include <cstdlib>

#include "core/database.h"
#include "util/timer.h"
#include "workloads/sensor_generator.h"

int main(int argc, char** argv) {
  const int instances = argc > 1 ? std::atoi(argv[1]) : 10;

  sedge::Database db;
  db.LoadOntology(sedge::workloads::SensorGraphGenerator::BuildOntology());
  const std::string query =
      sedge::workloads::SensorGraphGenerator::PressureAnomalyQuery();

  std::printf("monitoring %d graph instances (2 stations, heterogeneous "
              "units)...\n\n",
              instances);
  int total_alerts = 0;
  double total_ms = 0.0;
  for (int i = 0; i < instances; ++i) {
    // Each arriving graph instance is encoded and queried once (the
    // paper's deployment model).
    sedge::workloads::SensorConfig config;
    config.seed = 1000 + static_cast<uint64_t>(i);
    config.observations_per_sensor = 12;
    config.anomaly_rate = 0.08;
    const sedge::rdf::Graph graph =
        sedge::workloads::SensorGraphGenerator::Generate(config);

    sedge::WallTimer timer;
    const sedge::Status load = db.LoadData(graph);
    if (!load.ok()) {
      std::fprintf(stderr, "load: %s\n", load.ToString().c_str());
      return 1;
    }
    const auto result = db.Query(query);
    const double ms = timer.ElapsedMillis();
    total_ms += ms;
    if (!result.ok()) {
      std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("instance %2d: %3zu triples, %zu alert(s), %.2f ms\n", i,
                graph.size(), result.value().size(), ms);
    for (const auto& row : result.value().rows) {
      std::printf("    ALERT %s reads %s at %s\n",
                  row[0] ? row[0]->lexical().c_str() : "?",
                  row[3] ? row[3]->lexical().c_str() : "?",
                  row[2] ? row[2]->lexical().c_str() : "?");
    }
    total_alerts += static_cast<int>(result.value().size());
  }
  std::printf("\n%d alerts over %d instances; avg %.2f ms per instance "
              "(build + query)\n",
              total_alerts, instances, total_ms / instances);
  return 0;
}
