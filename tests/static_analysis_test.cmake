# Negative-compilation harness for the thread-safety annotations.
#
# Each TU in tests/thread_safety_negcompile/ (except positive_control.cc)
# contains exactly one deliberate lock-discipline violation and MUST be
# rejected by Clang's Thread Safety Analysis. The tests invoke the
# compiler front end directly (-fsyntax-only: no codegen, no linking —
# the probes befriend private engine state and never need to run) and
# assert that the diagnostic output mentions "thread-safety".
#
# PASS_REGULAR_EXPRESSION rather than WILL_FAIL on purpose: WILL_FAIL
# would count ANY compile failure as a pass — a bitrotted include or a
# renamed field would keep the test green while proving nothing. By
# matching the warning-flag text we only pass when the rejection comes
# from the analysis itself.
#
# positive_control.cc is the inverse: the same probes with locks held
# correctly, which must compile CLEANLY under the same flags. It guards
# against over-eager flags or a broken include path silently making the
# negative tests "pass".
#
# Clang-only: GCC does not implement the analysis (the SEDGE_* macros
# no-op there), so the harness registers nothing under GCC. CI runs a
# Clang flavour, so the gate is always exercised before merge.

if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  message(STATUS "Thread-safety negcompile tests skipped (need Clang, "
                 "have ${CMAKE_CXX_COMPILER_ID})")
  return()
endif()

set(SEDGE_NEGCOMPILE_FLAGS
    -std=c++17 -fsyntax-only -Wthread-safety -Werror=thread-safety
    -I${CMAKE_CURRENT_SOURCE_DIR}/src)

set(SEDGE_NEGCOMPILE_DIR ${CMAKE_CURRENT_SOURCE_DIR}/tests/thread_safety_negcompile)

file(GLOB SEDGE_NEGCOMPILE_SOURCES CONFIGURE_DEPENDS
     ${SEDGE_NEGCOMPILE_DIR}/*.cc)

foreach(probe_src ${SEDGE_NEGCOMPILE_SOURCES})
  get_filename_component(probe_name ${probe_src} NAME_WE)
  add_test(NAME negcompile_${probe_name}
           COMMAND ${CMAKE_CXX_COMPILER} ${SEDGE_NEGCOMPILE_FLAGS}
                   ${probe_src})
  if(probe_name STREQUAL "positive_control")
    # Must compile cleanly — default pass-on-exit-0 semantics.
  else()
    set_tests_properties(negcompile_${probe_name} PROPERTIES
                         PASS_REGULAR_EXPRESSION "thread-safety")
  endif()
endforeach()
