// Oracle property tests for the batched succinct kernels: every batch
// API must return exactly what a scalar loop over the same inputs
// returns, across bit densities chosen to stress word and directory
// boundaries, and on BOTH in-word select implementations (the dispatched
// BMI2 path and the portable fallback — forced via
// ForcePortableSelectForTest so one machine covers both).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sds/bit_vector.h"
#include "sds/broadword.h"
#include "sds/elias_fano.h"
#include "sds/succinct_bit_vector.h"
#include "sds/wavelet_tree.h"
#include "util/rng.h"

namespace sedge::sds {
namespace {

using sedge::Rng;

/// Runs `body` once on the startup-dispatched select path and once with
/// the portable fallback forced, restoring dispatch afterwards.
template <typename Body>
void OnBothSelectPaths(const Body& body) {
  body();
  broadword::ForcePortableSelectForTest(true);
  ASSERT_FALSE(broadword::UsingBmi2Select());
  body();
  broadword::ForcePortableSelectForTest(false);
}

TEST(Broadword, SelectInWordPathsAgree) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t word = rng.Next() | 1;  // at least one set bit
    const uint64_t pop = static_cast<uint64_t>(__builtin_popcountll(word));
    for (uint64_t k = 1; k <= pop; ++k) {
      const uint64_t portable = broadword::SelectInWordPortable(word, k);
      EXPECT_EQ(broadword::SelectInWord(word, k), portable)
          << "word=" << word << " k=" << k;
    }
  }
}

// Densities stressing the directory: empty/full words, exact block and
// superblock boundaries, and the sparse/dense extremes of real bitmaps.
const std::pair<uint64_t, double> kBitVectorShapes[] = {
    {0, 0.5},      {1, 1.0},      {64, 0.5},     {65, 0.02},
    {256, 0.5},    {2048, 0.5},   {2049, 0.97},  {5000, 0.0},
    {5000, 1.0},   {100000, 0.001}, {100000, 0.5}, {100000, 0.999},
};

BitVector RandomBits(uint64_t n, double density, uint64_t seed) {
  Rng rng(seed);
  BitVector bits(n);
  for (uint64_t i = 0; i < n; ++i) bits.Set(i, rng.Bernoulli(density));
  return bits;
}

/// A sorted, possibly-duplicated probe run in [0, limit] — the shape the
/// merge join feeds the batch kernels.
std::vector<uint64_t> SortedProbes(uint64_t limit, size_t count,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> probes(count);
  for (auto& p : probes) p = rng.Uniform(limit + 1);
  std::sort(probes.begin(), probes.end());
  return probes;
}

TEST(SuccinctBitVectorBatch, RankBatchMatchesScalarLoop) {
  for (const auto& [n, density] : kBitVectorShapes) {
    const SuccinctBitVector sbv(RandomBits(n, density, n + 11));
    const std::vector<uint64_t> probes = SortedProbes(n, 300, n + 13);
    std::vector<uint64_t> batched(probes.size());
    sbv.Rank1Batch(probes.data(), probes.size(), batched.data());
    for (size_t j = 0; j < probes.size(); ++j) {
      ASSERT_EQ(batched[j], sbv.Rank1(probes[j]))
          << "n=" << n << " density=" << density << " probe=" << probes[j];
    }
  }
}

TEST(SuccinctBitVectorBatch, SelectBatchMatchesScalarLoopBothPaths) {
  OnBothSelectPaths([] {
    for (const auto& [n, density] : kBitVectorShapes) {
      const SuccinctBitVector sbv(RandomBits(n, density, n + 17));
      if (sbv.ones() == 0) continue;
      // Sorted ks including duplicates and the sentinel ones()+1.
      std::vector<uint64_t> ks = SortedProbes(sbv.ones() - 1, 300, n + 19);
      for (auto& k : ks) ++k;  // ranks are 1-based
      ks.push_back(sbv.ones() + 1);
      std::vector<uint64_t> batched(ks.size());
      sbv.Select1Batch(ks.data(), ks.size(), batched.data());
      for (size_t j = 0; j < ks.size(); ++j) {
        ASSERT_EQ(batched[j], sbv.Select1(ks[j]))
            << "n=" << n << " density=" << density << " k=" << ks[j];
      }
    }
  });
}

std::vector<uint64_t> RandomSymbols(size_t count, uint64_t alphabet,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> symbols(count);
  for (auto& s : symbols) s = rng.Uniform(alphabet);
  return symbols;
}

const std::pair<size_t, uint64_t> kWaveletShapes[] = {
    {1, 1}, {100, 2}, {1000, 7}, {5000, 64}, {20000, 1000},
};

TEST(WaveletTreeBatch, RankBatchMatchesScalarLoop) {
  for (const auto& [count, alphabet] : kWaveletShapes) {
    const WaveletTree wt(RandomSymbols(count, alphabet, count + 23));
    const std::vector<uint64_t> probes = SortedProbes(count, 200, count + 29);
    for (uint64_t c : {uint64_t{0}, alphabet / 2, alphabet - 1}) {
      std::vector<uint64_t> batched(probes.size());
      wt.RankBatch(probes.data(), probes.size(), c, batched.data());
      for (size_t j = 0; j < probes.size(); ++j) {
        ASSERT_EQ(batched[j], wt.Rank(probes[j], c))
            << "count=" << count << " c=" << c << " probe=" << probes[j];
      }
    }
  }
}

TEST(WaveletTreeBatch, AccessBatchMatchesScalarLoop) {
  for (const auto& [count, alphabet] : kWaveletShapes) {
    const WaveletTree wt(RandomSymbols(count, alphabet, count + 31));
    const std::vector<uint64_t> probes =
        SortedProbes(count - 1, 200, count + 37);
    std::vector<uint64_t> batched(probes.size());
    wt.AccessBatch(probes.data(), probes.size(), batched.data());
    for (size_t j = 0; j < probes.size(); ++j) {
      ASSERT_EQ(batched[j], wt.Access(probes[j]))
          << "count=" << count << " probe=" << probes[j];
    }
  }
}

TEST(WaveletTreeBatch, RankPairBatchMatchesScalarLoopBothPaths) {
  OnBothSelectPaths([] {
    for (const auto& [count, alphabet] : kWaveletShapes) {
      const WaveletTree wt(RandomSymbols(count, alphabet, count + 41));
      Rng rng(count + 43);
      const uint64_t a = rng.Uniform(count);
      const uint64_t b = a + rng.Uniform(count - a + 1);
      // Sorted symbol run including out-of-alphabet probes past
      // max_value() (the merge join asks about subjects the run lacks).
      std::vector<uint64_t> symbols = SortedProbes(alphabet + 2, 200, count);
      std::vector<uint64_t> lo(symbols.size()), hi(symbols.size());
      wt.RankPairBatch(a, b, symbols.data(), symbols.size(), lo.data(),
                       hi.data());
      for (size_t j = 0; j < symbols.size(); ++j) {
        const uint64_t c = symbols[j];
        const uint64_t want_lo = c > wt.max_value() ? 0 : wt.Rank(a, c);
        const uint64_t want_hi = c > wt.max_value() ? 0 : wt.Rank(b, c);
        ASSERT_EQ(lo[j], want_lo) << "count=" << count << " c=" << c;
        ASSERT_EQ(hi[j], want_hi) << "count=" << count << " c=" << c;
      }
    }
  });
}

TEST(EliasFanoBatch, NextGeqMatchesBinarySearchOracle) {
  OnBothSelectPaths([] {
    for (const uint64_t count : {size_t{0}, size_t{1}, size_t{100},
                                 size_t{5000}}) {
      Rng rng(count + 47);
      std::vector<uint64_t> values(count);
      uint64_t v = 0;
      for (auto& x : values) {
        v += rng.Uniform(50);  // duplicates (gap 0) included
        x = v;
      }
      const EliasFano ef(values);
      const uint64_t limit = count == 0 ? 10 : values.back() + 10;
      for (int trial = 0; trial < 300; ++trial) {
        const uint64_t x = rng.Uniform(limit + 1);
        const auto it = std::lower_bound(values.begin(), values.end(), x);
        const uint64_t want =
            static_cast<uint64_t>(it - values.begin());
        ASSERT_EQ(ef.NextGeq(x), want) << "count=" << count << " x=" << x;
      }
    }
  });
}

}  // namespace
}  // namespace sedge::sds
