// Snapshot-isolation property test for the concurrent query service.
//
// N service readers issue sensor-workload queries (single-TP scans, a
// star join, an rdf:type scan, and the Section-2 reasoning + BIND +
// FILTER anomaly query) while a writer streams observation batches,
// ages out old batches with Remove(), and kicks off CompactAsync() folds.
// Every response must equal a single-threaded oracle evaluated at the
// response's pinned write watermark (StoreGeneration::writes()): the
// writer records the logical triple set after each batch, and each
// sampled (watermark, query, result) is re-executed on a fresh database
// loaded with exactly that state. Any torn read, lost batch, or
// mis-published snapshot breaks the equality.
//
// The sweep runs kRounds independent rounds (fresh database, seeds
// varied) so thread interleavings differ; the whole file runs under the
// TSan CI job as well.
//
// The observation vocabulary is entirely ontology-known (see
// SensorGraphGenerator::BuildOntology), so a compaction re-encode changes
// physical ids but never decoded results — which is what makes "equal
// watermark => equal result set" hold across generation swaps.

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "serve/query_service.h"
#include "workloads/sensor_generator.h"

namespace sedge {
namespace {

constexpr int kRounds = 100;
constexpr int kBatchesPerRound = 10;
constexpr int kClients = 3;
constexpr int kQueriesPerClient = 8;

std::vector<std::string> ServeQueries() {
  return {
      // Single-TP scan over a datatype property.
      "SELECT ?o ?t WHERE { ?o <http://www.w3.org/ns/sosa/resultTime> ?t }",
      // Subject-subject star join (the merge-join fast path).
      "SELECT ?s ?o ?r WHERE { "
      "?s <http://www.w3.org/ns/sosa/observes> ?o . "
      "?o <http://www.w3.org/ns/sosa/hasResult> ?r . "
      "?o <http://www.w3.org/ns/sosa/resultTime> ?t }",
      // rdf:type scan.
      "SELECT ?obs WHERE { ?obs a <http://www.w3.org/ns/sosa/Observation> }",
      // Reasoning + BIND + FILTER: the paper's anomaly query.
      workloads::SensorGraphGenerator::PressureAnomalyQuery(),
  };
}

/// Order-independent rendering of a result set (rows sorted, duplicates
/// kept) — executor row order is not part of the contract.
std::string Canonical(const sparql::QueryResult& result) {
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const auto& row : result.rows) {
    std::string r;
    for (const auto& cell : row) {
      r += cell.has_value() ? cell->ToNTriples() : "UNBOUND";
      r += '\t';
    }
    rows.push_back(std::move(r));
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const std::string& r : rows) {
    out += r;
    out += '\n';
  }
  return out;
}

rdf::Graph GraphFromSet(const std::set<rdf::Triple>& triples) {
  rdf::Graph g;
  for (const rdf::Triple& t : triples) g.Add(t.subject, t.predicate, t.object);
  return g;
}

struct Sample {
  uint64_t writes;
  size_t query;
  std::string canonical;
};

void RunRound(int round) {
  workloads::SensorConfig cfg;
  cfg.seed = 7 + static_cast<uint64_t>(round);
  cfg.stations = 2;
  cfg.sensors_per_station = 2;
  cfg.observations_per_sensor = 1;  // 28 triples per batch

  const ontology::Ontology onto =
      workloads::SensorGraphGenerator::BuildOntology();
  const rdf::Graph topology =
      workloads::SensorGraphGenerator::GenerateTopology(cfg);

  Database db;
  db.LoadOntology(onto);
  db.set_compaction_ratio(0);  // the writer triggers async folds itself
  ASSERT_TRUE(db.LoadData(topology).ok());

  serve::ServeOptions sopts;
  sopts.readers = kClients;
  sopts.queue_depth = 64;
  serve::QueryService service(&db, sopts);

  // states[w] = the logical triple set a snapshot at watermark w holds.
  std::vector<std::set<rdf::Triple>> states;
  states.push_back({topology.triples().begin(), topology.triples().end()});

  const std::vector<std::string> queries = ServeQueries();
  std::vector<std::vector<Sample>> samples(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kQueriesPerClient; ++i) {
        const size_t qidx =
            (static_cast<size_t>(c) + static_cast<size_t>(i) * 3) %
            queries.size();
        serve::QueryService::Response resp =
            service.Execute(queries[qidx]);
        if (!resp.status.ok()) {
          ADD_FAILURE() << "serve error: " << resp.status.ToString();
          continue;
        }
        samples[static_cast<size_t>(c)].push_back(
            {resp.writes, qidx, Canonical(resp.result)});
      }
    });
  }

  // The writer lane: insert observation batches, age out the oldest one
  // now and then, and keep background folds in flight throughout.
  std::vector<rdf::Graph> inserted;
  size_t next_removal = 0;
  for (int k = 1; k <= kBatchesPerRound; ++k) {
    std::set<rdf::Triple> state = states.back();
    if (k % 4 == 0 && next_removal < inserted.size()) {
      const rdf::Graph& victim = inserted[next_removal++];
      ASSERT_TRUE(db.Remove(victim).ok());
      for (const rdf::Triple& t : victim.triples()) state.erase(t);
    } else {
      const rdf::Graph batch =
          workloads::SensorGraphGenerator::GenerateObservationBatch(cfg, k);
      ASSERT_TRUE(db.Insert(batch).ok());
      state.insert(batch.triples().begin(), batch.triples().end());
      inserted.push_back(batch);
    }
    states.push_back(std::move(state));
    if (k % 3 == 0) ASSERT_TRUE(db.CompactAsync().ok());
  }

  for (std::thread& t : clients) t.join();
  service.Shutdown();
  ASSERT_TRUE(db.WaitForCompaction().ok());

  // Single-threaded oracle: rebuild each observed watermark's state from
  // scratch (never compacted, never concurrent) and compare result sets.
  std::map<uint64_t, std::unique_ptr<Database>> oracles;
  for (const auto& client_samples : samples) {
    for (const Sample& s : client_samples) {
      ASSERT_LT(s.writes, states.size());
      std::unique_ptr<Database>& oracle = oracles[s.writes];
      if (oracle == nullptr) {
        oracle = std::make_unique<Database>();
        oracle->LoadOntology(onto);
        oracle->set_compaction_ratio(0);
        ASSERT_TRUE(oracle->LoadData(GraphFromSet(states[s.writes])).ok());
      }
      Result<sparql::QueryResult> expected =
          oracle->Query(queries[s.query]);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();
      EXPECT_EQ(Canonical(expected.value()), s.canonical)
          << "round " << round << ", watermark " << s.writes << ", query #"
          << s.query;
    }
  }

  // The final state must also converge exactly.
  Database final_oracle;
  final_oracle.LoadOntology(onto);
  ASSERT_TRUE(final_oracle.LoadData(GraphFromSet(states.back())).ok());
  for (const std::string& q : queries) {
    Result<sparql::QueryResult> got = db.Query(q);
    Result<sparql::QueryResult> want = final_oracle.Query(q);
    ASSERT_TRUE(got.ok() && want.ok());
    EXPECT_EQ(Canonical(want.value()), Canonical(got.value()));
  }
}

TEST(ConcurrentServeProperty, ReadersMatchPinnedWatermarkOracle) {
  for (int round = 0; round < kRounds; ++round) {
    RunRound(round);
    if (HasFatalFailure() || HasNonfatalFailure()) {
      FAIL() << "stopping after first failing round (" << round << ")";
    }
  }
}

}  // namespace
}  // namespace sedge
