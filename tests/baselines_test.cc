// Tests for the baseline stores and engine: every baseline must agree with
// SuccinctEdge on every catalog query, and UNION rewriting must make the
// reasoning-free baselines reproduce SuccinctEdge's entailed answers.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/baseline_engine.h"
#include "baselines/jena_inmem_like.h"
#include "baselines/jena_tdb_like.h"
#include "baselines/rdf4j_like.h"
#include "baselines/rdf4led_like.h"
#include "core/database.h"
#include "sparql/executor.h"
#include "sparql/sparql_parser.h"
#include "sparql/union_rewriter.h"
#include "workloads/lubm_generator.h"
#include "workloads/lubm_queries.h"

namespace sedge::baselines {
namespace {

using workloads::LubmConfig;
using workloads::LubmGenerator;
using workloads::LubmQueries;

class BaselineSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    LubmConfig config;
    config.departments_per_university = 2;  // ~10K triples
    graph_ = new rdf::Graph(LubmGenerator::Generate(config));
    onto_ = new ontology::Ontology(LubmGenerator::BuildOntology());

    db_ = new Database();
    db_->LoadOntology(*onto_);
    ASSERT_TRUE(db_->LoadData(*graph_).ok());

    stores_ = new std::vector<std::unique_ptr<BaselineStore>>();
    stores_->push_back(std::make_unique<Rdf4jLikeStore>());
    stores_->push_back(std::make_unique<JenaInMemLikeStore>());
    stores_->push_back(std::make_unique<JenaTdbLikeStore>());  // latency 0
    stores_->push_back(std::make_unique<Rdf4LedLikeStore>());
    for (auto& store : *stores_) {
      ASSERT_TRUE(store->Build(*graph_).ok()) << store->name();
    }
  }
  static void TearDownTestSuite() {
    delete stores_;
    delete db_;
    delete onto_;
    delete graph_;
    stores_ = nullptr;
    db_ = nullptr;
    onto_ = nullptr;
    graph_ = nullptr;
  }

  static rdf::Graph* graph_;
  static ontology::Ontology* onto_;
  static Database* db_;
  static std::vector<std::unique_ptr<BaselineStore>>* stores_;
};

rdf::Graph* BaselineSuite::graph_ = nullptr;
ontology::Ontology* BaselineSuite::onto_ = nullptr;
Database* BaselineSuite::db_ = nullptr;
std::vector<std::unique_ptr<BaselineStore>>* BaselineSuite::stores_ = nullptr;

TEST_F(BaselineSuite, AllStoresIndexEveryTriple) {
  // The graph may contain duplicate statements; stores deduplicate.
  for (const auto& store : *stores_) {
    EXPECT_GT(store->num_triples(), graph_->size() * 9 / 10) << store->name();
    EXPECT_LE(store->num_triples(), graph_->size()) << store->name();
  }
  const uint64_t reference = (*stores_)[0]->num_triples();
  for (const auto& store : *stores_) {
    EXPECT_EQ(store->num_triples(), reference) << store->name();
  }
}

TEST_F(BaselineSuite, ScansAgreeAcrossStores) {
  // Probe a few random patterns; all stores must return identical result
  // multisets.
  const rdf::Term p = rdf::Term::Iri(
      std::string(workloads::kLubmNs) + "takesCourse");
  for (const auto& store : *stores_) {
    const auto pid = store->dict().IdOf(p);
    ASSERT_TRUE(pid.has_value()) << store->name();
    uint64_t count = 0;
    store->Scan(std::nullopt, *pid, std::nullopt,
                [&count](uint32_t, uint32_t, uint32_t) {
                  ++count;
                  return true;
                });
    EXPECT_GT(count, 100u) << store->name();
    // Cross-check against the first store by count (ids differ per store).
    static uint64_t reference = 0;
    if (&store == &(*stores_)[0]) reference = count;
    EXPECT_EQ(count, reference) << store->name();
  }
}

TEST_F(BaselineSuite, NonReasoningQueriesMatchSuccinctEdge) {
  db_->set_reasoning(false);
  auto specs = LubmQueries::SingleSp(*graph_, {4, 66, 129, 257, 513});
  const auto po = LubmQueries::SinglePo(*graph_, {5, 17, 135, 283, 521});
  specs.insert(specs.end(), po.begin(), po.end());
  const auto sp = LubmQueries::SingleP();
  specs.insert(specs.end(), sp.begin(), sp.end());
  const auto m = LubmQueries::Multi(*graph_);
  specs.insert(specs.end(), m.begin(), m.end());

  for (const auto& spec : specs) {
    const auto expected = db_->QueryCount(spec.sparql);
    ASSERT_TRUE(expected.ok()) << spec.id;
    const auto parsed = sparql::ParseQuery(spec.sparql);
    ASSERT_TRUE(parsed.ok()) << spec.id;
    for (const auto& store : *stores_) {
      BaselineEngine engine(store.get());
      const auto got = engine.ExecuteCount(parsed.value());
      ASSERT_TRUE(got.ok()) << store->name() << "/" << spec.id << ": "
                            << got.status().ToString();
      EXPECT_EQ(got.value(), expected.value())
          << store->name() << " disagrees on " << spec.id;
    }
  }
  db_->set_reasoning(true);
}

TEST_F(BaselineSuite, UnionRewritingReproducesReasoningAnswers) {
  // Compared under DISTINCT: UNION rewriting has bag semantics (an
  // individual typed by two sub-concepts matches two branches), while the
  // LiteMat interval scan yields each solution once. Set semantics makes
  // the two reasoning strategies comparable (see DESIGN.md Section 5).
  db_->set_reasoning(true);
  for (const auto& spec : LubmQueries::Reasoning(*graph_)) {
    auto parsed = sparql::ParseQuery(spec.sparql);
    ASSERT_TRUE(parsed.ok()) << spec.id;
    parsed.value().distinct = true;
    sparql::Executor native(&db_->store());
    const auto expected = native.ExecuteEncoded(parsed.value());
    ASSERT_TRUE(expected.ok()) << spec.id;
    auto rewritten = sparql::RewriteWithUnions(parsed.value(), *onto_);
    ASSERT_TRUE(rewritten.ok()) << spec.id << ": "
                                << rewritten.status().ToString();
    rewritten.value().distinct = true;
    for (const auto& store : *stores_) {
      BaselineEngine engine(store.get());
      const auto got = engine.ExecuteCount(rewritten.value());
      if (!store->SupportsUnion() &&
          !rewritten.value().where.unions.empty()) {
        EXPECT_TRUE(got.status().IsUnsupported())
            << store->name() << " should reject UNION (" << spec.id << ")";
        continue;
      }
      ASSERT_TRUE(got.ok()) << store->name() << "/" << spec.id << ": "
                            << got.status().ToString();
      EXPECT_EQ(got.value(), expected.value().rows.size())
          << store->name() << " disagrees on rewritten " << spec.id;
    }
  }
}

TEST_F(BaselineSuite, SizeAccountingOrdering) {
  // Disk stores report on-device sizes; SuccinctEdge's triple storage must
  // be the smallest (the Figure 10 claim).
  const uint64_t sedge_triples = db_->store().TriplesSizeInBytes();
  for (const auto& store : *stores_) {
    EXPECT_LT(sedge_triples, store->StorageSizeInBytes())
        << "SuccinctEdge should be smaller than " << store->name();
  }
}

TEST(UnionRewriter, ExpandsTypeAndPropertyPatterns) {
  ontology::Ontology onto;
  onto.AddSubClassOf("http://e/B", "http://e/A");
  onto.AddSubClassOf("http://e/C", "http://e/A");
  onto.AddSubPropertyOf("http://e/q", "http://e/p",
                        ontology::PropertyKind::kObject);
  const auto q = sparql::ParseQuery(
      "SELECT ?x WHERE { ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type>"
      " <http://e/A> . ?x <http://e/p> ?y }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const auto rewritten = sparql::RewriteWithUnions(q.value(), onto);
  ASSERT_TRUE(rewritten.ok());
  // 3 classes x 2 properties = 6 branches.
  ASSERT_EQ(rewritten.value().where.unions.size(), 1u);
  EXPECT_EQ(rewritten.value().where.unions[0].alternatives.size(), 6u);
  EXPECT_TRUE(rewritten.value().where.triples.empty());
}

TEST(UnionRewriter, NoExpansionNeededKeepsBgp) {
  ontology::Ontology onto;
  const auto q = sparql::ParseQuery(
      "SELECT ?x WHERE { ?x <http://e/p> ?y }");
  ASSERT_TRUE(q.ok());
  const auto rewritten = sparql::RewriteWithUnions(q.value(), onto);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten.value().where.triples.size(), 1u);
  EXPECT_TRUE(rewritten.value().where.unions.empty());
}

TEST(UnionRewriter, RefusesCombinatorialExplosion) {
  ontology::Ontology onto;
  for (int i = 0; i < 100; ++i) {
    onto.AddSubClassOf("http://e/C" + std::to_string(i), "http://e/A");
  }
  const auto q = sparql::ParseQuery(
      "SELECT ?x WHERE { "
      "?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/A> . "
      "?y <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/A> . "
      "?z <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/A> }");
  ASSERT_TRUE(q.ok());
  const auto rewritten = sparql::RewriteWithUnions(q.value(), onto, 10000);
  EXPECT_FALSE(rewritten.ok());  // 101^3 branches
}

TEST(JenaTdbLike, DeviceLatencySlowsQueries) {
  LubmConfig config;
  config.departments_per_university = 1;
  const rdf::Graph graph = LubmGenerator::Generate(config);

  JenaTdbLikeStore fast(0.0, 0.0, 16);
  ASSERT_TRUE(fast.Build(graph).ok());
  JenaTdbLikeStore slow(40.0, 55.0, 16);
  ASSERT_TRUE(slow.Build(graph).ok());
  EXPECT_GT(slow.device_stats().reads, 0u);
  EXPECT_EQ(fast.num_triples(), slow.num_triples());
}

}  // namespace
}  // namespace sedge::baselines
