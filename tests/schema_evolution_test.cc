// Dynamic schema subsystem tests (src/store/schema/): provisional
// admission of unseen predicates/classes on the streaming write path,
// WAL durability of admissions, checkpoint round trips of the registry,
// and the epoch re-encode at compaction that folds provisional terms into
// the LiteMat hierarchies — after which subsumption inference over them
// must be indistinguishable from bootstrap-ontology vocabulary.

#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "core/database.h"
#include "io/block_device.h"
#include "io/wal.h"
#include "rdf/vocabulary.h"
#include "store/schema/schema_registry.h"

namespace sedge {
namespace {

constexpr char kNs[] = "http://e.org/";

std::string Iri(const std::string& local) { return kNs + local; }

rdf::Triple Obj(const std::string& s, const std::string& p,
                const std::string& o) {
  return {rdf::Term::Iri(Iri(s)), rdf::Term::Iri(Iri(p)),
          rdf::Term::Iri(Iri(o))};
}
rdf::Triple Dt(const std::string& s, const std::string& p,
               const std::string& value) {
  return {rdf::Term::Iri(Iri(s)), rdf::Term::Iri(Iri(p)),
          rdf::Term::Literal(value)};
}
rdf::Triple Typ(const std::string& s, const std::string& c) {
  return {rdf::Term::Iri(Iri(s)), rdf::Term::Iri(rdf::kRdfType),
          rdf::Term::Iri(Iri(c))};
}

/// Bootstrap ontology: Sensor ⊑ Device ⊑ owl:Thing, hosts/observes object
/// properties, level datatype property.
ontology::Ontology TestOntology() {
  ontology::Ontology onto;
  onto.AddSubClassOf(Iri("Device"), rdf::kOwlThing);
  onto.AddSubClassOf(Iri("Sensor"), Iri("Device"));
  onto.AddProperty(Iri("hosts"), ontology::PropertyKind::kObject);
  onto.AddProperty(Iri("observes"), ontology::PropertyKind::kObject);
  onto.AddProperty(Iri("level"), ontology::PropertyKind::kDatatype);
  return onto;
}

/// Seed data over the bootstrap vocabulary only.
rdf::Graph SeedGraph() {
  rdf::Graph g;
  g.Add(Typ("dev0", "Device"));
  g.Add(Typ("sen0", "Sensor"));
  g.Add(Obj("dev0", "hosts", "sen0"));
  g.Add(Obj("sen0", "observes", "obs0"));
  g.Add(Dt("sen0", "level", "3"));
  return g;
}

uint64_t Count(const Database& db, const std::string& sparql) {
  const auto r = db.QueryCount(sparql);
  EXPECT_TRUE(r.ok()) << sparql << ": " << r.status().ToString();
  return r.ok() ? r.value() : ~0ULL;
}

std::string ThingQuery() {
  return "SELECT ?s WHERE { ?s a <" + std::string(rdf::kOwlThing) + "> }";
}
std::string TopPropQuery() {
  return "SELECT * WHERE { ?s <" + std::string(rdf::kOwlTopObjectProperty) +
         "> ?o }";
}

class SchemaEvolution : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.LoadOntology(TestOntology());
    ASSERT_TRUE(db_.LoadData(SeedGraph()).ok());
    db_.set_compaction_ratio(0);  // compaction points are explicit
  }

  Database db_;
};

TEST_F(SchemaEvolution, NovelTermsAreQueryableImmediately) {
  Database::InsertReport report;
  rdf::Graph batch;
  batch.Add(Obj("sen1", "linksTo", "sen0"));  // novel object property
  batch.Add(Dt("sen1", "vibration", "9"));    // novel datatype property
  batch.Add(Typ("sen1", "VibrationSensor"));  // novel class
  batch.Add(Obj("sen2", "linksTo", "sen1"));  // reuses the admission
  ASSERT_TRUE(db_.Insert(batch, &report).ok());
  EXPECT_EQ(report.deferred_provisional, 4u);
  EXPECT_EQ(report.applied, 0u);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_EQ(report.admitted_terms, 3u);
  EXPECT_TRUE(db_.store().has_pending_schema());

  // Exact-term queries hit right away, via every access shape.
  db_.reset_query_stats();
  EXPECT_EQ(Count(db_, "SELECT * WHERE { ?s <" + Iri("linksTo") + "> ?o }"),
            2u);
  EXPECT_EQ(Count(db_, "SELECT * WHERE { ?s <" + Iri("vibration") +
                           "> \"9\" }"),
            1u);
  EXPECT_EQ(Count(db_, "SELECT ?s WHERE { ?s a <" + Iri("VibrationSensor") +
                           "> }"),
            1u);
  EXPECT_EQ(Count(db_, "SELECT * WHERE { <" + Iri("sen2") + "> <" +
                           Iri("linksTo") + "> ?o }"),
            1u);
  // Star join over a provisional predicate (merge-join shape).
  EXPECT_EQ(Count(db_, "SELECT * WHERE { ?s <" + Iri("linksTo") +
                           "> ?o . ?s a <" + Iri("VibrationSensor") + "> }"),
            1u);
  EXPECT_GT(db_.query_stats().provisional_routes, 0u);

  // Unbound-predicate scans see the provisional triples too.
  EXPECT_EQ(Count(db_, "SELECT * WHERE { ?s ?p ?o }"),
            SeedGraph().size() + 4);

  // Inference is deferred: the owl:Thing interval does not cover the
  // provisional class, the top-property interval not the provisional
  // predicate.
  EXPECT_EQ(Count(db_, ThingQuery()), 2u);    // dev0, sen0 only
  EXPECT_EQ(Count(db_, TopPropQuery()), 2u);  // hosts + observes triples
}

TEST_F(SchemaEvolution, ReencodeEnablesInferenceIdenticallyToBootstrap) {
  rdf::Graph batch;
  batch.Add(Typ("sen1", "VibrationSensor"));
  batch.Add(Obj("sen1", "linksTo", "sen0"));
  batch.Add(Dt("sen1", "vibration", "9"));
  ASSERT_TRUE(db_.Insert(batch).ok());
  const uint64_t triples_before = db_.num_triples();

  ASSERT_TRUE(db_.Compact().ok());
  EXPECT_FALSE(db_.store().has_pending_schema());
  EXPECT_EQ(db_.num_triples(), triples_before);

  // The re-encoded terms now carry real LiteMat ids...
  const auto& dict = db_.store().dict();
  ASSERT_TRUE(dict.ConceptId(Iri("VibrationSensor")).has_value());
  ASSERT_TRUE(dict.ObjectPropertyId(Iri("linksTo")).has_value());
  ASSERT_TRUE(dict.DatatypePropertyId(Iri("vibration")).has_value());
  EXPECT_FALSE(store::schema::IsProvisionalId(
      *dict.ConceptId(Iri("VibrationSensor"))));

  // ...so subsumption inference reaches them: sen1 is an owl:Thing, and
  // linksTo answers under the top object property.
  EXPECT_EQ(Count(db_, ThingQuery()), 3u);
  EXPECT_EQ(Count(db_, TopPropQuery()), 3u);
  // Exact queries still agree.
  EXPECT_EQ(Count(db_, "SELECT ?s WHERE { ?s a <" + Iri("VibrationSensor") +
                           "> }"),
            1u);
  EXPECT_EQ(Count(db_, "SELECT * WHERE { ?s <" + Iri("linksTo") + "> ?o }"),
            1u);

  // "Identically to bootstrap": a database whose *load* already contained
  // the novel terms answers every query the same way.
  Database bootstrap;
  bootstrap.LoadOntology(TestOntology());
  rdf::Graph all = SeedGraph();
  for (const rdf::Triple& t : batch.triples()) all.Add(t);
  ASSERT_TRUE(bootstrap.LoadData(all).ok());
  for (const std::string& q : std::vector<std::string>{
           ThingQuery(), TopPropQuery(),
           "SELECT ?s WHERE { ?s a <" + Iri("VibrationSensor") + "> }",
           "SELECT * WHERE { ?s ?p ?o }",
           "SELECT * WHERE { ?s <" + Iri("linksTo") + "> ?o . ?s <" +
               Iri("vibration") + "> ?v }"}) {
    EXPECT_EQ(Count(db_, q), Count(bootstrap, q)) << q;
  }
}

TEST_F(SchemaEvolution, RemovedProvisionalTripleStillFoldsItsVocabulary) {
  ASSERT_TRUE(db_.Insert(Obj("sen1", "linksTo", "sen0")).ok());
  ASSERT_TRUE(db_.Remove(Obj("sen1", "linksTo", "sen0")).ok());
  EXPECT_EQ(db_.num_triples(), SeedGraph().size());
  EXPECT_EQ(Count(db_, "SELECT * WHERE { ?s <" + Iri("linksTo") + "> ?o }"),
            0u);
  // The admission is still pending, and the re-encode gives the orphan
  // term a permanent LiteMat id (a fold triggers even with an empty
  // delta).
  EXPECT_TRUE(db_.store().has_pending_schema());
  ASSERT_TRUE(db_.Compact().ok());
  EXPECT_FALSE(db_.store().has_pending_schema());
  EXPECT_TRUE(
      db_.store().dict().ObjectPropertyId(Iri("linksTo")).has_value());
}

TEST_F(SchemaEvolution, AdmissionsSurviveStandaloneWalReplay) {
  io::SimulatedBlockDevice device;
  io::WriteAheadLog wal(&device);
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(db_.AttachWal(&wal, /*replay=*/false).ok());

  rdf::Graph batch;
  batch.Add(Obj("sen1", "linksTo", "sen0"));
  batch.Add(Typ("sen1", "VibrationSensor"));
  ASSERT_TRUE(db_.Insert(batch).ok());
  ASSERT_TRUE(db_.Remove(Obj("sen1", "linksTo", "sen0")).ok());

  // Crash-reopen: a fresh log handle on the same device replays the
  // admissions ahead of the mutations into a freshly seeded store.
  io::WriteAheadLog reopened(&device);
  ASSERT_TRUE(reopened.Open().ok());
  Database recovered;
  recovered.LoadOntology(TestOntology());
  ASSERT_TRUE(recovered.LoadData(SeedGraph()).ok());
  recovered.set_compaction_ratio(0);
  ASSERT_TRUE(recovered.AttachWal(&reopened, /*replay=*/true).ok());

  EXPECT_EQ(recovered.num_triples(), db_.num_triples());
  EXPECT_TRUE(recovered.store().has_pending_schema());
  EXPECT_EQ(Count(recovered, "SELECT ?s WHERE { ?s a <" +
                                 Iri("VibrationSensor") + "> }"),
            1u);
  EXPECT_EQ(Count(recovered,
                  "SELECT * WHERE { ?s <" + Iri("linksTo") + "> ?o }"),
            0u);

  // The registry agrees with the original, id for id.
  const auto& a = db_.store().schema_registry();
  const auto& b = recovered.store().schema_registry();
  ASSERT_TRUE(b.ConceptId(Iri("VibrationSensor")).has_value());
  EXPECT_EQ(a.ConceptId(Iri("VibrationSensor")),
            b.ConceptId(Iri("VibrationSensor")));
  ASSERT_TRUE(b.ObjectPropertyId(Iri("linksTo")).has_value());
  EXPECT_EQ(a.ObjectPropertyId(Iri("linksTo")),
            b.ObjectPropertyId(Iri("linksTo")));
}

TEST_F(SchemaEvolution, AdmissionIdsStayUniqueAcrossReencodes) {
  // A standalone WAL is never truncated, so admission ids handed out
  // before and after a re-encode coexist in one log — they must never
  // collide, or replay dies on a registry conflict.
  io::SimulatedBlockDevice device;
  io::WriteAheadLog wal(&device);
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(db_.AttachWal(&wal, /*replay=*/false).ok());

  ASSERT_TRUE(db_.Insert(Obj("sen1", "linksTo", "sen0")).ok());
  ASSERT_TRUE(db_.Compact().ok());  // re-encode drains the registry
  // Post-fold admission in the SAME space as linksTo: without counter
  // carry-over it would reuse linksTo's id and break replay below.
  ASSERT_TRUE(db_.Insert(Obj("sen2", "feeds", "sen0")).ok());
  ASSERT_TRUE(db_.Insert(Typ("sen2", "AcousticSensor")).ok());
  ASSERT_TRUE(db_.Insert(Dt("sen2", "noise", "70")).ok());

  io::WriteAheadLog reopened(&device);
  ASSERT_TRUE(reopened.Open().ok());
  Database recovered;
  recovered.LoadOntology(TestOntology());
  ASSERT_TRUE(recovered.LoadData(SeedGraph()).ok());
  recovered.set_compaction_ratio(0);
  const Status replay = recovered.AttachWal(&reopened, /*replay=*/true);
  ASSERT_TRUE(replay.ok()) << replay.ToString();
  EXPECT_EQ(recovered.num_triples(), db_.num_triples());
  EXPECT_EQ(Count(recovered,
                  "SELECT * WHERE { ?s <" + Iri("linksTo") + "> ?o }"),
            1u);
  EXPECT_EQ(Count(recovered,
                  "SELECT * WHERE { ?s <" + Iri("feeds") + "> ?o }"),
            1u);
  EXPECT_EQ(Count(recovered, "SELECT ?s WHERE { ?s a <" +
                                 Iri("AcousticSensor") + "> }"),
            1u);
  EXPECT_EQ(Count(recovered,
                  "SELECT * WHERE { ?s <" + Iri("noise") + "> ?v }"),
            1u);
}

TEST(SchemaEvolutionDevice, CheckpointRoundTripPreservesRegistry) {
  io::SimulatedBlockDevice device;
  Database::OpenOptions options;
  options.bootstrap_ontology = TestOntology();
  auto opened = Database::Open(&device, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(opened).value();
  db->set_compaction_ratio(0);
  // Base large enough that the restored overlay stays under the default
  // auto-compaction ratio after reopen (Open ends in MaybeCompact).
  rdf::Graph seed = SeedGraph();
  for (int i = 0; i < 20; ++i) {
    seed.Add(Obj("dev0", "hosts", "sen" + std::to_string(100 + i)));
  }
  ASSERT_TRUE(db->LoadData(seed).ok());

  rdf::Graph batch;
  batch.Add(Obj("sen1", "linksTo", "sen0"));
  batch.Add(Typ("sen1", "VibrationSensor"));
  batch.Add(Dt("sen1", "vibration", "9"));
  ASSERT_TRUE(db->Insert(batch).ok());
  const auto original_pid =
      db->store().schema_registry().ObjectPropertyId(Iri("linksTo"));
  ASSERT_TRUE(original_pid.has_value());

  // Checkpoint truncates the WAL: after reopen the registry can only have
  // come from the serialized image.
  ASSERT_TRUE(db->Checkpoint().ok());
  db.reset();
  auto reopened = Database::Open(&device, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  db = std::move(reopened).value();
  db->set_compaction_ratio(0);

  EXPECT_EQ(db->num_triples(), seed.size() + 3);
  EXPECT_TRUE(db->store().has_pending_schema());
  EXPECT_EQ(db->store().schema_registry().ObjectPropertyId(Iri("linksTo")),
            original_pid);
  EXPECT_EQ(Count(*db, "SELECT * WHERE { ?s <" + Iri("linksTo") + "> ?o }"),
            1u);
  EXPECT_EQ(Count(*db, "SELECT ?s WHERE { ?s a <" + Iri("VibrationSensor") +
                           "> }"),
            1u);

  // Post-recovery writes keep extending the restored registry, and the
  // durable compaction re-encodes everything.
  ASSERT_TRUE(db->Insert(Dt("sen1", "humidity", "55")).ok());
  ASSERT_TRUE(db->Compact().ok());
  EXPECT_FALSE(db->store().has_pending_schema());
  EXPECT_EQ(Count(*db, ThingQuery()), 3u);

  // And the re-encoded state itself round-trips through the device.
  db.reset();
  auto final_open = Database::Open(&device, options);
  ASSERT_TRUE(final_open.ok());
  db = std::move(final_open).value();
  EXPECT_FALSE(db->store().has_pending_schema());
  EXPECT_EQ(Count(*db, ThingQuery()), 3u);
  EXPECT_EQ(Count(*db, "SELECT * WHERE { ?s <" + Iri("humidity") +
                           "> ?v }"),
            1u);
}

TEST(SchemaEvolutionDevice, WalReplayRestoresAdmissionsWithoutCheckpoint) {
  io::SimulatedBlockDevice device;
  Database::OpenOptions options;
  options.bootstrap_ontology = TestOntology();
  auto opened = Database::Open(&device, options);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<Database> db = std::move(opened).value();
  db->set_compaction_ratio(0);
  ASSERT_TRUE(db->LoadData(SeedGraph()).ok());
  // No explicit checkpoint after these: recovery must come from the WAL's
  // admission + mutation records alone.
  ASSERT_TRUE(db->Insert(Obj("sen1", "linksTo", "sen0")).ok());
  ASSERT_TRUE(db->Insert(Typ("sen1", "VibrationSensor")).ok());
  const uint64_t pre_crash = db->num_triples();
  db.reset();

  auto recovered = Database::Open(&device, options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  db = std::move(recovered).value();
  EXPECT_EQ(db->num_triples(), pre_crash);
  EXPECT_EQ(Count(*db, "SELECT * WHERE { ?s <" + Iri("linksTo") + "> ?o }"),
            1u);
  EXPECT_EQ(Count(*db, "SELECT ?s WHERE { ?s a <" + Iri("VibrationSensor") +
                           "> }"),
            1u);
}

TEST_F(SchemaEvolution, AsyncReencodeFoldsTermsAdmittedDuringTheFold) {
  ASSERT_TRUE(db_.Insert(Obj("sen1", "linksTo", "sen0")).ok());
  ASSERT_TRUE(db_.CompactAsync().ok());
  // Writes admitted while the fold runs land in the forked store's
  // registry and stay provisional until the *next* re-encode.
  ASSERT_TRUE(db_.Insert(Typ("sen2", "AcousticSensor")).ok());
  ASSERT_TRUE(db_.WaitForCompaction().ok());

  EXPECT_EQ(Count(db_, "SELECT * WHERE { ?s <" + Iri("linksTo") + "> ?o }"),
            1u);
  EXPECT_EQ(Count(db_, "SELECT ?s WHERE { ?s a <" + Iri("AcousticSensor") +
                           "> }"),
            1u);
  // linksTo was frozen into the fold; AcousticSensor may still be pending
  // (it raced the freeze). One more fold drains everything.
  EXPECT_TRUE(
      db_.store().dict().ObjectPropertyId(Iri("linksTo")).has_value());
  ASSERT_TRUE(db_.Compact().ok());
  EXPECT_FALSE(db_.store().has_pending_schema());
  EXPECT_TRUE(
      db_.store().dict().ConceptId(Iri("AcousticSensor")).has_value());
  EXPECT_EQ(Count(db_, ThingQuery()), 3u);  // dev0, sen0, sen2
}

}  // namespace
}  // namespace sedge
