// Cross-engine property test: on random graphs and random BGP queries,
// SuccinctEdge and the RDF4J-like baseline (two independent stores and
// executors) must return exactly the same number of solutions. This is the
// strongest end-to-end correctness check in the suite: any disagreement in
// parsing, encoding, scanning, ordering or joining surfaces here.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/baseline_engine.h"
#include "baselines/rdf4j_like.h"
#include "core/database.h"
#include "rdf/vocabulary.h"
#include "sparql/sparql_parser.h"
#include "util/rng.h"

namespace sedge {
namespace {

struct PropertyParam {
  uint64_t seed;
  int num_triples;
  int num_subjects;
  int num_predicates;
  int num_objects;
};

class EngineAgreement : public ::testing::TestWithParam<PropertyParam> {};

std::string Iri(const std::string& kind, uint64_t i) {
  return "http://e.org/" + kind + std::to_string(i);
}

TEST_P(EngineAgreement, RandomBgpQueriesAgree) {
  const auto param = GetParam();
  Rng rng(param.seed);

  // Random graph: object triples, datatype triples and rdf:type triples.
  rdf::Graph graph;
  for (int i = 0; i < param.num_triples; ++i) {
    const std::string s = Iri("s", rng.Uniform(param.num_subjects));
    const uint64_t kind = rng.Uniform(4);
    if (kind == 0) {
      graph.Add(rdf::Term::Iri(s), rdf::Term::Iri(rdf::kRdfType),
                rdf::Term::Iri(Iri("C", rng.Uniform(6))));
    } else if (kind == 1) {
      graph.Add(rdf::Term::Iri(s),
                rdf::Term::Iri(Iri("dp", rng.Uniform(3))),
                rdf::Term::Literal(std::to_string(rng.Uniform(20))));
    } else {
      graph.Add(rdf::Term::Iri(s),
                rdf::Term::Iri(Iri("p", rng.Uniform(param.num_predicates))),
                rdf::Term::Iri(Iri("o", rng.Uniform(param.num_objects))));
    }
  }

  Database db;  // empty ontology: no reasoning effects to worry about
  ASSERT_TRUE(db.LoadData(graph).ok());
  db.set_reasoning(false);
  baselines::Rdf4jLikeStore reference;
  ASSERT_TRUE(reference.Build(graph).ok());
  baselines::BaselineEngine reference_engine(&reference);

  // Random queries: 1-3 triple patterns chained over shared variables.
  const auto random_slot = [&](int var_pool, const char* kind,
                               int constants) -> std::string {
    if (rng.Bernoulli(0.6)) {
      return "?v" + std::to_string(rng.Uniform(var_pool));
    }
    return "<" + Iri(kind, rng.Uniform(constants)) + ">";
  };
  for (int trial = 0; trial < 40; ++trial) {
    const int tps = 1 + static_cast<int>(rng.Uniform(3));
    std::string where;
    for (int t = 0; t < tps; ++t) {
      const std::string s = random_slot(2, "s", param.num_subjects);
      const uint64_t pk = rng.Uniform(3);
      std::string p;
      std::string o;
      if (pk == 0) {
        p = "<" + std::string(rdf::kRdfType) + ">";
        o = rng.Bernoulli(0.5) ? "?v" + std::to_string(2 + rng.Uniform(2))
                               : "<" + Iri("C", 6) + ">";
        if (!rng.Bernoulli(0.5)) o = "<" + Iri("C", rng.Uniform(6)) + ">";
      } else if (pk == 1) {
        p = "<" + Iri("dp", rng.Uniform(3)) + ">";
        o = rng.Bernoulli(0.5)
                ? "?v" + std::to_string(2 + rng.Uniform(2))
                : "\"" + std::to_string(rng.Uniform(20)) + "\"";
      } else {
        p = "<" + Iri("p", rng.Uniform(param.num_predicates)) + ">";
        o = rng.Bernoulli(0.5) ? "?v" + std::to_string(2 + rng.Uniform(2))
                               : "<" + Iri("o", rng.Uniform(param.num_objects)) +
                                     ">";
      }
      where += s + " " + p + " " + o + " . ";
    }
    const std::string sparql = "SELECT * WHERE { " + where + "}";
    auto parsed = sparql::ParseQuery(sparql);
    ASSERT_TRUE(parsed.ok()) << sparql;

    const auto expected = reference_engine.ExecuteCount(parsed.value());
    ASSERT_TRUE(expected.ok()) << sparql;
    const auto got = db.QueryCount(sparql);
    ASSERT_TRUE(got.ok()) << sparql << ": " << got.status().ToString();
    ASSERT_EQ(got.value(), expected.value()) << "disagreement on: " << sparql;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, EngineAgreement,
    ::testing::Values(PropertyParam{1, 50, 10, 4, 10},
                      PropertyParam{2, 200, 20, 6, 20},
                      PropertyParam{3, 1000, 50, 8, 40},
                      PropertyParam{4, 1000, 10, 3, 10},   // dense
                      PropertyParam{5, 3000, 200, 10, 200},  // sparse
                      PropertyParam{6, 500, 5, 2, 5}));      // very dense

// Merge join on/off must agree on every random query too.
TEST(EngineAgreementModes, MergeJoinAndOptimizerOnOffAgree) {
  Rng rng(99);
  rdf::Graph graph;
  for (int i = 0; i < 800; ++i) {
    graph.Add(rdf::Term::Iri(Iri("s", rng.Uniform(40))),
              rdf::Term::Iri(Iri("p", rng.Uniform(5))),
              rdf::Term::Iri(Iri("o", rng.Uniform(40))));
  }
  Database db;
  ASSERT_TRUE(db.LoadData(graph).ok());
  for (int trial = 0; trial < 20; ++trial) {
    const std::string q = "SELECT * WHERE { ?a <" + Iri("p", rng.Uniform(5)) +
                          "> ?b . ?b <" + Iri("p", rng.Uniform(5)) +
                          "> ?c . ?a <" + Iri("p", rng.Uniform(5)) + "> ?d }";
    uint64_t counts[4];
    int i = 0;
    for (const bool merge : {true, false}) {
      for (const bool opt : {true, false}) {
        db.set_merge_join(merge);
        db.set_optimizer(opt);
        const auto r = db.QueryCount(q);
        ASSERT_TRUE(r.ok());
        counts[i++] = r.value();
      }
    }
    EXPECT_EQ(counts[0], counts[1]) << q;
    EXPECT_EQ(counts[0], counts[2]) << q;
    EXPECT_EQ(counts[0], counts[3]) << q;
  }
}

}  // namespace
}  // namespace sedge
