// Cross-engine property test: on random graphs and random BGP queries,
// SuccinctEdge and the RDF4J-like baseline (two independent stores and
// executors) must return exactly the same number of solutions. This is the
// strongest end-to-end correctness check in the suite: any disagreement in
// parsing, encoding, scanning, ordering or joining surfaces here.

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/baseline_engine.h"
#include "baselines/rdf4j_like.h"
#include "core/database.h"
#include "io/block_device.h"
#include "io/wal.h"
#include "rdf/vocabulary.h"
#include "sparql/sparql_parser.h"
#include "util/rng.h"

namespace sedge {
namespace {

struct PropertyParam {
  uint64_t seed;
  int num_triples;
  int num_subjects;
  int num_predicates;
  int num_objects;
};

class EngineAgreement : public ::testing::TestWithParam<PropertyParam> {};

std::string Iri(const std::string& kind, uint64_t i) {
  return "http://e.org/" + kind + std::to_string(i);
}

TEST_P(EngineAgreement, RandomBgpQueriesAgree) {
  const auto param = GetParam();
  Rng rng(param.seed);

  // Random graph: object triples, datatype triples and rdf:type triples.
  rdf::Graph graph;
  for (int i = 0; i < param.num_triples; ++i) {
    const std::string s = Iri("s", rng.Uniform(param.num_subjects));
    const uint64_t kind = rng.Uniform(4);
    if (kind == 0) {
      graph.Add(rdf::Term::Iri(s), rdf::Term::Iri(rdf::kRdfType),
                rdf::Term::Iri(Iri("C", rng.Uniform(6))));
    } else if (kind == 1) {
      graph.Add(rdf::Term::Iri(s),
                rdf::Term::Iri(Iri("dp", rng.Uniform(3))),
                rdf::Term::Literal(std::to_string(rng.Uniform(20))));
    } else {
      graph.Add(rdf::Term::Iri(s),
                rdf::Term::Iri(Iri("p", rng.Uniform(param.num_predicates))),
                rdf::Term::Iri(Iri("o", rng.Uniform(param.num_objects))));
    }
  }

  Database db;  // empty ontology: no reasoning effects to worry about
  ASSERT_TRUE(db.LoadData(graph).ok());
  db.set_reasoning(false);
  baselines::Rdf4jLikeStore reference;
  ASSERT_TRUE(reference.Build(graph).ok());
  baselines::BaselineEngine reference_engine(&reference);

  // Random queries: 1-3 triple patterns chained over shared variables.
  const auto random_slot = [&](int var_pool, const char* kind,
                               int constants) -> std::string {
    if (rng.Bernoulli(0.6)) {
      return "?v" + std::to_string(rng.Uniform(var_pool));
    }
    return "<" + Iri(kind, rng.Uniform(constants)) + ">";
  };
  for (int trial = 0; trial < 40; ++trial) {
    const int tps = 1 + static_cast<int>(rng.Uniform(3));
    std::string where;
    for (int t = 0; t < tps; ++t) {
      const std::string s = random_slot(2, "s", param.num_subjects);
      const uint64_t pk = rng.Uniform(3);
      std::string p;
      std::string o;
      if (pk == 0) {
        p = "<" + std::string(rdf::kRdfType) + ">";
        o = rng.Bernoulli(0.5) ? "?v" + std::to_string(2 + rng.Uniform(2))
                               : "<" + Iri("C", 6) + ">";
        if (!rng.Bernoulli(0.5)) o = "<" + Iri("C", rng.Uniform(6)) + ">";
      } else if (pk == 1) {
        p = "<" + Iri("dp", rng.Uniform(3)) + ">";
        o = rng.Bernoulli(0.5)
                ? "?v" + std::to_string(2 + rng.Uniform(2))
                : "\"" + std::to_string(rng.Uniform(20)) + "\"";
      } else {
        p = "<" + Iri("p", rng.Uniform(param.num_predicates)) + ">";
        o = rng.Bernoulli(0.5) ? "?v" + std::to_string(2 + rng.Uniform(2))
                               : "<" + Iri("o", rng.Uniform(param.num_objects)) +
                                     ">";
      }
      where += s + " " + p + " " + o + " . ";
    }
    const std::string sparql = "SELECT * WHERE { " + where + "}";
    auto parsed = sparql::ParseQuery(sparql);
    ASSERT_TRUE(parsed.ok()) << sparql;

    const auto expected = reference_engine.ExecuteCount(parsed.value());
    ASSERT_TRUE(expected.ok()) << sparql;
    const auto got = db.QueryCount(sparql);
    ASSERT_TRUE(got.ok()) << sparql << ": " << got.status().ToString();
    ASSERT_EQ(got.value(), expected.value()) << "disagreement on: " << sparql;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, EngineAgreement,
    ::testing::Values(PropertyParam{1, 50, 10, 4, 10},
                      PropertyParam{2, 200, 20, 6, 20},
                      PropertyParam{3, 1000, 50, 8, 40},
                      PropertyParam{4, 1000, 10, 3, 10},   // dense
                      PropertyParam{5, 3000, 200, 10, 200},  // sparse
                      PropertyParam{6, 500, 5, 2, 5}));      // very dense

// Delta-overlay property test: random interleavings of inserts, deletes
// and compactions must leave SuccinctEdge agreeing with an RDF4J-like
// reference store rebuilt from scratch on the current live triple set, on
// random BGP queries — the write path must be invisible to query
// semantics.
TEST(EngineAgreement, InterleavedWritesAndCompactionsAgree) {
  Rng rng(77);
  const int kSubjects = 25;
  const int kPredicates = 4;
  const int kObjects = 25;

  const auto random_triple = [&]() -> rdf::Triple {
    const std::string s = Iri("s", rng.Uniform(kSubjects));
    const uint64_t kind = rng.Uniform(4);
    if (kind == 0) {
      return {rdf::Term::Iri(s), rdf::Term::Iri(rdf::kRdfType),
              rdf::Term::Iri(Iri("C", rng.Uniform(5)))};
    }
    if (kind == 1) {
      return {rdf::Term::Iri(s), rdf::Term::Iri(Iri("dp", rng.Uniform(3))),
              rdf::Term::Literal(std::to_string(rng.Uniform(12)))};
    }
    return {rdf::Term::Iri(s), rdf::Term::Iri(Iri("p", rng.Uniform(kPredicates))),
            rdf::Term::Iri(Iri("o", rng.Uniform(kObjects)))};
  };

  // Seed graph mentioning every predicate and class (LiteMat ids are fixed
  // at build time; schema-new inserts would be skipped).
  rdf::Graph seed;
  for (uint64_t p = 0; p < kPredicates; ++p) {
    seed.Add(rdf::Term::Iri(Iri("s", 0)), rdf::Term::Iri(Iri("p", p)),
             rdf::Term::Iri(Iri("o", 0)));
  }
  for (uint64_t p = 0; p < 3; ++p) {
    seed.Add(rdf::Term::Iri(Iri("s", 0)), rdf::Term::Iri(Iri("dp", p)),
             rdf::Term::Literal("0"));
  }
  for (uint64_t c = 0; c < 5; ++c) {
    seed.Add(rdf::Term::Iri(Iri("s", 0)), rdf::Term::Iri(rdf::kRdfType),
             rdf::Term::Iri(Iri("C", c)));
  }
  for (int i = 0; i < 120; ++i) seed.Add(random_triple());

  Database db;
  ASSERT_TRUE(db.LoadData(seed).ok());
  db.set_reasoning(false);
  db.set_compaction_ratio(0);  // compaction points are chosen by the rng

  // Live set mirrors the store's distinct-triple semantics.
  std::vector<rdf::Triple> live;
  for (const rdf::Triple& t : seed.triples()) {
    if (std::find(live.begin(), live.end(), t) == live.end()) {
      live.push_back(t);
    }
  }
  const auto contains = [&](const rdf::Triple& t) {
    for (const rdf::Triple& x : live) {
      if (x == t) return true;
    }
    return false;
  };

  const auto random_query = [&]() {
    const int tps = 1 + static_cast<int>(rng.Uniform(3));
    std::string where;
    for (int t = 0; t < tps; ++t) {
      const std::string s = rng.Bernoulli(0.6)
                                ? "?v" + std::to_string(rng.Uniform(2))
                                : "<" + Iri("s", rng.Uniform(kSubjects)) + ">";
      std::string p, o;
      const uint64_t pk = rng.Uniform(3);
      if (pk == 0) {
        p = "<" + std::string(rdf::kRdfType) + ">";
        o = rng.Bernoulli(0.5) ? "?v" + std::to_string(2 + rng.Uniform(2))
                               : "<" + Iri("C", rng.Uniform(5)) + ">";
      } else if (pk == 1) {
        p = "<" + Iri("dp", rng.Uniform(3)) + ">";
        o = rng.Bernoulli(0.5) ? "?v" + std::to_string(2 + rng.Uniform(2))
                               : "\"" + std::to_string(rng.Uniform(12)) + "\"";
      } else {
        p = "<" + Iri("p", rng.Uniform(kPredicates)) + ">";
        o = rng.Bernoulli(0.5) ? "?v" + std::to_string(2 + rng.Uniform(2))
                               : "<" + Iri("o", rng.Uniform(kObjects)) + ">";
      }
      where += s + " " + p + " " + o + " . ";
    }
    return "SELECT * WHERE { " + where + "}";
  };

  for (int step = 0; step < 240; ++step) {
    const rdf::Triple t = random_triple();
    if (rng.Bernoulli(0.65)) {
      ASSERT_TRUE(db.Insert(t).ok());
      if (!contains(t)) live.push_back(t);
    } else {
      ASSERT_TRUE(db.Remove(t).ok());
      for (auto it = live.begin(); it != live.end(); ++it) {
        if (*it == t) {
          live.erase(it);
          break;
        }
      }
    }
    if (rng.Bernoulli(0.05)) {
      ASSERT_TRUE(db.Compact().ok());
    }

    if (step % 20 != 19) continue;
    ASSERT_EQ(db.num_triples(), live.size()) << "step " << step;
    rdf::Graph live_graph;
    for (const rdf::Triple& x : live) live_graph.Add(x);
    baselines::Rdf4jLikeStore reference;
    ASSERT_TRUE(reference.Build(live_graph).ok());
    baselines::BaselineEngine reference_engine(&reference);
    for (int trial = 0; trial < 6; ++trial) {
      const std::string sparql = random_query();
      auto parsed = sparql::ParseQuery(sparql);
      ASSERT_TRUE(parsed.ok()) << sparql;
      const auto expected = reference_engine.ExecuteCount(parsed.value());
      ASSERT_TRUE(expected.ok()) << sparql;
      const auto got = db.QueryCount(sparql);
      ASSERT_TRUE(got.ok()) << sparql << ": " << got.status().ToString();
      ASSERT_EQ(got.value(), expected.value())
          << "step " << step << ", disagreement on: " << sparql;
    }
  }
}

// Randomized durability property test: a random interleaving of inserts,
// removes, compactions and close-and-reopen cycles, run against an
// in-memory oracle set. The "deployment" persists only the block device —
// checkpoint extents plus the WAL region, no application callback; every
// reopen restores from Database::Open alone, and the recovered store must
// agree with the oracle on the exported triple set AND on random BGP
// queries checked against an independently rebuilt RDF4J-like reference.
TEST(WalDurability, RandomReopenCyclesMatchOracle) {
  Rng rng(20260730);
  const int kSubjects = 18;
  const int kPredicates = 3;
  const int kObjects = 18;

  const auto random_triple = [&]() -> rdf::Triple {
    const std::string s = Iri("s", rng.Uniform(kSubjects));
    const uint64_t kind = rng.Uniform(4);
    if (kind == 0) {
      return {rdf::Term::Iri(s), rdf::Term::Iri(rdf::kRdfType),
              rdf::Term::Iri(Iri("C", rng.Uniform(4)))};
    }
    if (kind == 1) {
      return {rdf::Term::Iri(s), rdf::Term::Iri(Iri("dp", rng.Uniform(2))),
              rdf::Term::Literal(std::to_string(rng.Uniform(10)))};
    }
    return {rdf::Term::Iri(s),
            rdf::Term::Iri(Iri("p", rng.Uniform(kPredicates))),
            rdf::Term::Iri(Iri("o", rng.Uniform(kObjects)))};
  };

  // Pinned schema triples: the snapshot must always mention every
  // predicate/class (LiteMat ids are fixed per build), so they hang off a
  // subject the random mutation space never touches.
  rdf::Graph seed;
  const rdf::Term pin = rdf::Term::Iri("http://e.org/pin");
  for (int p = 0; p < kPredicates; ++p) {
    seed.Add(pin, rdf::Term::Iri(Iri("p", p)), rdf::Term::Iri(Iri("o", 0)));
  }
  for (int p = 0; p < 2; ++p) {
    seed.Add(pin, rdf::Term::Iri(Iri("dp", p)), rdf::Term::Literal("0"));
  }
  for (int c = 0; c < 4; ++c) {
    seed.Add(pin, rdf::Term::Iri(rdf::kRdfType), rdf::Term::Iri(Iri("C", c)));
  }

  // What survives a "process exit": the block device alone — checkpoint
  // extents + WAL region. Everything else is restored by Database::Open.
  io::SimulatedBlockDevice device;

  std::unique_ptr<Database> db;
  bool provisioned = false;
  const auto reopen = [&]() {
    Database::OpenOptions options;
    options.wal_capacity_blocks = 64;  // small region: exercise forced
                                       // checkpoints on a full log too
    auto opened = Database::Open(&device, std::move(options));
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    db = std::move(opened).value();
    db->set_reasoning(false);
    db->set_compaction_ratio(0.3);  // auto-compaction in the mix too
    if (!provisioned) {
      // First boot: install the seed base (device mode checkpoints the
      // replacement base automatically — the provisioning step).
      ASSERT_TRUE(db->LoadData(seed).ok());
      provisioned = true;
    }
  };
  reopen();

  std::set<rdf::Triple> oracle;
  for (const rdf::Triple& t : seed.triples()) oracle.insert(t);

  const auto check_against_oracle = [&]() {
    ASSERT_EQ(db->num_triples(), oracle.size());
    const rdf::Graph exported = db->store().ExportGraph();
    const std::set<rdf::Triple> got(exported.triples().begin(),
                                    exported.triples().end());
    ASSERT_EQ(got, oracle);

    rdf::Graph oracle_graph;
    for (const rdf::Triple& t : oracle) oracle_graph.Add(t);
    baselines::Rdf4jLikeStore reference;
    ASSERT_TRUE(reference.Build(oracle_graph).ok());
    baselines::BaselineEngine reference_engine(&reference);
    for (int trial = 0; trial < 4; ++trial) {
      std::string where;
      const int tps = 1 + static_cast<int>(rng.Uniform(2));
      for (int t = 0; t < tps; ++t) {
        const std::string s = rng.Bernoulli(0.6)
                                  ? "?v" + std::to_string(rng.Uniform(2))
                                  : "<" + Iri("s", rng.Uniform(kSubjects)) +
                                        ">";
        std::string p, o;
        const uint64_t pk = rng.Uniform(3);
        if (pk == 0) {
          p = "<" + std::string(rdf::kRdfType) + ">";
          o = rng.Bernoulli(0.5) ? "?v" + std::to_string(2 + rng.Uniform(2))
                                 : "<" + Iri("C", rng.Uniform(4)) + ">";
        } else if (pk == 1) {
          p = "<" + Iri("dp", rng.Uniform(2)) + ">";
          o = rng.Bernoulli(0.5)
                  ? "?v" + std::to_string(2 + rng.Uniform(2))
                  : "\"" + std::to_string(rng.Uniform(10)) + "\"";
        } else {
          p = "<" + Iri("p", rng.Uniform(kPredicates)) + ">";
          o = rng.Bernoulli(0.5) ? "?v" + std::to_string(2 + rng.Uniform(2))
                                 : "<" + Iri("o", rng.Uniform(kObjects)) +
                                       ">";
        }
        where += s + " " + p + " " + o + " . ";
      }
      const std::string sparql = "SELECT * WHERE { " + where + "}";
      auto parsed = sparql::ParseQuery(sparql);
      ASSERT_TRUE(parsed.ok()) << sparql;
      const auto expected = reference_engine.ExecuteCount(parsed.value());
      ASSERT_TRUE(expected.ok()) << sparql;
      const auto got_count = db->QueryCount(sparql);
      ASSERT_TRUE(got_count.ok()) << sparql;
      ASSERT_EQ(got_count.value(), expected.value())
          << "disagreement on: " << sparql;
    }
  };

  int reopens = 0;
  for (int step = 0; step < 400; ++step) {
    const double dice = static_cast<double>(rng.Uniform(100)) / 100.0;
    if (dice < 0.55) {
      const rdf::Triple t = random_triple();
      ASSERT_TRUE(db->Insert(t).ok());
      oracle.insert(t);
    } else if (dice < 0.85) {
      const rdf::Triple t = random_triple();
      ASSERT_TRUE(db->Remove(t).ok());
      oracle.erase(t);
    } else if (dice < 0.92) {
      ASSERT_TRUE(db->Compact().ok());
    } else {
      // Close-and-reopen: the durability round trip under test.
      db.reset();  // "process exit" (clean: everything acked was synced)

      reopen();
      ++reopens;
      check_against_oracle();
    }
  }
  // Final reopen so the property is exercised at the very end state too.
  db.reset();

  reopen();
  ++reopens;
  check_against_oracle();
  ASSERT_GE(reopens, 10) << "rng drift: reopen arm barely exercised";
}

// The delta-aware merge join: with a LIVE overlay (no compaction), the
// fast path must agree with the row-by-row path on star joins over
// randomized interleaved writes — covering tombstoned base triples,
// delta-only subjects, and const-object / const-literal probes — and the
// ExecutorStats counters must prove it actually ran against the delta.
TEST(EngineAgreementModes, MergeJoinAgreesWithRowPathUnderLiveDelta) {
  Rng rng(31337);
  const int kSubjects = 30;
  const int kPredicates = 4;
  const int kObjects = 20;

  const auto random_triple_over = [&](int subject_space) -> rdf::Triple {
    const std::string s = Iri("s", rng.Uniform(subject_space));
    const uint64_t kind = rng.Uniform(4);
    if (kind == 0) {
      return {rdf::Term::Iri(s), rdf::Term::Iri(rdf::kRdfType),
              rdf::Term::Iri(Iri("C", rng.Uniform(4)))};
    }
    if (kind == 1) {
      return {rdf::Term::Iri(s), rdf::Term::Iri(Iri("dp", rng.Uniform(3))),
              rdf::Term::Literal(std::to_string(rng.Uniform(10)))};
    }
    return {rdf::Term::Iri(s),
            rdf::Term::Iri(Iri("p", rng.Uniform(kPredicates))),
            rdf::Term::Iri(Iri("o", rng.Uniform(kObjects)))};
  };
  const auto random_triple = [&]() { return random_triple_over(kSubjects); };

  // Seed over the lower half of the subject space; the upper half enters
  // only through the overlay (delta-only subject runs).
  rdf::Graph seed;
  for (uint64_t p = 0; p < kPredicates; ++p) {
    seed.Add(rdf::Term::Iri(Iri("s", 0)), rdf::Term::Iri(Iri("p", p)),
             rdf::Term::Iri(Iri("o", 0)));
  }
  for (uint64_t p = 0; p < 3; ++p) {
    seed.Add(rdf::Term::Iri(Iri("s", 0)), rdf::Term::Iri(Iri("dp", p)),
             rdf::Term::Literal("0"));
  }
  for (uint64_t c = 0; c < 4; ++c) {
    seed.Add(rdf::Term::Iri(Iri("s", 0)), rdf::Term::Iri(rdf::kRdfType),
             rdf::Term::Iri(Iri("C", c)));
  }
  for (int i = 0; i < 150; ++i) seed.Add(random_triple_over(kSubjects / 2));

  Database db;
  ASSERT_TRUE(db.LoadData(seed).ok());
  db.set_reasoning(false);
  db.set_compaction_ratio(0);  // the delta must stay live throughout

  const auto star_query = [&]() {
    // Subject-bound star: the first TP binds ?a, the rest extend it —
    // exactly the merge-join shape. Objects are fresh vars or constants
    // (resource and literal probes both).
    std::string where = "?a <" + Iri("p", rng.Uniform(kPredicates)) +
                        "> ?b . ";
    const int extra = 1 + static_cast<int>(rng.Uniform(3));
    for (int t = 0; t < extra; ++t) {
      // The first extension is always a regular TP so that every query
      // holds two mergeable patterns: whichever the optimizer runs
      // second is subject-bound and must take the fast path.
      const uint64_t pk = t == 0 ? rng.Uniform(2) : rng.Uniform(3);
      if (pk == 0) {
        where += "?a <" + Iri("p", rng.Uniform(kPredicates)) + "> " +
                 (rng.Bernoulli(0.5)
                      ? "?c" + std::to_string(t)
                      : "<" + Iri("o", rng.Uniform(kObjects)) + ">") +
                 " . ";
      } else if (pk == 1) {
        where += "?a <" + Iri("dp", rng.Uniform(3)) + "> " +
                 (rng.Bernoulli(0.5)
                      ? "?d" + std::to_string(t)
                      : "\"" + std::to_string(rng.Uniform(10)) + "\"") +
                 " . ";
      } else {
        where += "?a a <" + Iri("C", rng.Uniform(4)) + "> . ";
      }
    }
    return "SELECT * WHERE { " + where + "}";
  };

  for (int round = 0; round < 12; ++round) {
    // A fresh slice of interleaved writes per round: inserts biased to
    // the delta-only upper subject half, removes tombstoning the base.
    for (int step = 0; step < 30; ++step) {
      const rdf::Triple t = random_triple();
      if (rng.Bernoulli(0.7)) {
        ASSERT_TRUE(db.Insert(t).ok());
      } else {
        ASSERT_TRUE(db.Remove(t).ok());
      }
    }
    ASSERT_TRUE(db.store().has_delta()) << "round " << round;

    uint64_t round_delta_extends = 0;
    for (int trial = 0; trial < 8; ++trial) {
      const std::string sparql = star_query();
      db.set_merge_join(true);
      db.reset_query_stats();
      const auto fast = db.QueryCount(sparql);
      ASSERT_TRUE(fast.ok()) << sparql;
      if (fast.value() > 0) {
        // Non-empty result: every TP ran, so the second mergeable
        // pattern must have taken the fast path against the live delta.
        ASSERT_GT(db.query_stats().merge_join_delta_extends, 0u)
            << "fast path skipped under live delta: " << sparql;
      }
      round_delta_extends += db.query_stats().merge_join_delta_extends;
      db.set_merge_join(false);
      const auto slow = db.QueryCount(sparql);
      ASSERT_TRUE(slow.ok()) << sparql;
      ASSERT_EQ(fast.value(), slow.value())
          << "round " << round << ", disagreement on: " << sparql;
    }
    ASSERT_GT(round_delta_extends, 0u)
        << "round " << round << " never exercised the delta-aware sweep";
    db.set_merge_join(true);
  }
}

// Schema-evolution property test: a random stream that keeps minting
// never-before-seen predicates and classes, interleaved with known-term
// writes, removes, sync/async compactions (the epoch re-encode) and
// device close-and-reopen cycles. At every checkpoint of the walk the
// store must agree with a naive oracle — an RDF4J-like store rebuilt from
// the live triple set — on random BGP queries that mix novel and
// bootstrap vocabulary; after each compaction the re-encoded terms must
// additionally answer reasoning (owl:Thing subsumption) queries exactly
// like a from-scratch sedge build of the same data, i.e. identically to
// bootstrap-ontology terms.
TEST(SchemaEvolutionProperty, NovelVocabularyStreamMatchesOracle) {
  Rng rng(20260731);
  const int kSubjects = 16;
  const int kKnownPreds = 3;
  const int kKnownClasses = 3;
  // The novel vocabulary pool grows as the walk mints terms; queries draw
  // from the minted prefix so novel predicates appear in queries too.
  int minted_preds = 0;
  int minted_classes = 0;

  ontology::Ontology onto;
  for (int c = 0; c < kKnownClasses; ++c) {
    onto.AddSubClassOf(Iri("C", c), rdf::kOwlThing);
  }
  for (int p = 0; p < kKnownPreds; ++p) {
    onto.AddProperty(Iri("p", p), ontology::PropertyKind::kObject);
  }
  onto.AddProperty(Iri("dp", 0), ontology::PropertyKind::kDatatype);

  const auto random_triple = [&]() -> rdf::Triple {
    const std::string s = Iri("s", rng.Uniform(kSubjects));
    const uint64_t kind = rng.Uniform(6);
    const bool novel = rng.Bernoulli(0.3);
    if (kind == 0) {
      std::string c;
      if (novel && rng.Bernoulli(0.5)) {
        c = Iri("NC", minted_classes++);
      } else if (novel && minted_classes > 0) {
        c = Iri("NC", rng.Uniform(minted_classes));
      } else {
        c = Iri("C", rng.Uniform(kKnownClasses));
      }
      return {rdf::Term::Iri(s), rdf::Term::Iri(rdf::kRdfType),
              rdf::Term::Iri(c)};
    }
    if (kind == 1) {
      const std::string p =
          novel ? Iri("ndp", rng.Uniform(3)) : Iri("dp", 0);
      return {rdf::Term::Iri(s), rdf::Term::Iri(p),
              rdf::Term::Literal(std::to_string(rng.Uniform(8)))};
    }
    std::string p;
    if (novel && rng.Bernoulli(0.4)) {
      p = Iri("np", minted_preds++);
    } else if (novel && minted_preds > 0) {
      p = Iri("np", rng.Uniform(minted_preds));
    } else {
      p = Iri("p", rng.Uniform(kKnownPreds));
    }
    return {rdf::Term::Iri(s), rdf::Term::Iri(p),
            rdf::Term::Iri(Iri("o", rng.Uniform(12)))};
  };

  // Bootstrap base over the known vocabulary only.
  rdf::Graph seed;
  for (int p = 0; p < kKnownPreds; ++p) {
    seed.Add(rdf::Term::Iri(Iri("s", 0)), rdf::Term::Iri(Iri("p", p)),
             rdf::Term::Iri(Iri("o", 0)));
  }
  seed.Add(rdf::Term::Iri(Iri("s", 0)), rdf::Term::Iri(Iri("dp", 0)),
           rdf::Term::Literal("0"));
  for (int c = 0; c < kKnownClasses; ++c) {
    seed.Add(rdf::Term::Iri(Iri("s", 0)), rdf::Term::Iri(rdf::kRdfType),
             rdf::Term::Iri(Iri("C", c)));
  }

  // Only the device survives reopen cycles.
  io::SimulatedBlockDevice device;
  std::unique_ptr<Database> db;
  bool provisioned = false;
  const auto reopen = [&]() {
    Database::OpenOptions options;
    options.wal_capacity_blocks = 128;
    options.bootstrap_ontology = onto;
    auto opened = Database::Open(&device, options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    db = std::move(opened).value();
    db->set_reasoning(false);
    db->set_compaction_ratio(0);  // the walk owns the compaction points
    if (!provisioned) {
      ASSERT_TRUE(db->LoadData(seed).ok());
      provisioned = true;
    }
  };
  reopen();

  std::set<rdf::Triple> oracle;
  for (const rdf::Triple& t : seed.triples()) oracle.insert(t);

  const auto random_query = [&]() {
    std::string where;
    const int tps = 1 + static_cast<int>(rng.Uniform(2));
    for (int t = 0; t < tps; ++t) {
      const std::string s = rng.Bernoulli(0.6)
                                ? "?v" + std::to_string(rng.Uniform(2))
                                : "<" + Iri("s", rng.Uniform(kSubjects)) + ">";
      std::string p, o;
      const uint64_t pk = rng.Uniform(4);
      if (pk == 0) {
        p = "<" + std::string(rdf::kRdfType) + ">";
        const bool use_novel = minted_classes > 0 && rng.Bernoulli(0.5);
        o = rng.Bernoulli(0.4)
                ? "?v" + std::to_string(2 + rng.Uniform(2))
                : (use_novel
                       ? "<" + Iri("NC", rng.Uniform(minted_classes)) + ">"
                       : "<" + Iri("C", rng.Uniform(kKnownClasses)) + ">");
      } else if (pk == 1) {
        p = rng.Bernoulli(0.5) ? "<" + Iri("dp", 0) + ">"
                               : "<" + Iri("ndp", rng.Uniform(3)) + ">";
        o = rng.Bernoulli(0.5) ? "?v" + std::to_string(2 + rng.Uniform(2))
                               : "\"" + std::to_string(rng.Uniform(8)) + "\"";
      } else {
        const bool use_novel = minted_preds > 0 && rng.Bernoulli(0.5);
        p = use_novel ? "<" + Iri("np", rng.Uniform(minted_preds)) + ">"
                      : "<" + Iri("p", rng.Uniform(kKnownPreds)) + ">";
        o = rng.Bernoulli(0.5) ? "?v" + std::to_string(2 + rng.Uniform(2))
                               : "<" + Iri("o", rng.Uniform(12)) + ">";
      }
      where += s + " " + p + " " + o + " . ";
    }
    return "SELECT * WHERE { " + where + "}";
  };

  const auto check_against_oracle = [&]() {
    ASSERT_EQ(db->num_triples(), oracle.size());
    rdf::Graph live;
    for (const rdf::Triple& t : oracle) live.Add(t);
    baselines::Rdf4jLikeStore reference;
    ASSERT_TRUE(reference.Build(live).ok());
    baselines::BaselineEngine reference_engine(&reference);
    for (int trial = 0; trial < 5; ++trial) {
      const std::string sparql = random_query();
      auto parsed = sparql::ParseQuery(sparql);
      ASSERT_TRUE(parsed.ok()) << sparql;
      const auto expected = reference_engine.ExecuteCount(parsed.value());
      ASSERT_TRUE(expected.ok()) << sparql;
      const auto got = db->QueryCount(sparql);
      ASSERT_TRUE(got.ok()) << sparql << ": " << got.status().ToString();
      ASSERT_EQ(got.value(), expected.value())
          << "disagreement on: " << sparql;
    }
  };

  // Reasoning check after a re-encode: the streamed store must answer
  // subsumption queries exactly like a from-scratch sedge build (whose
  // dictionary treats every term as bootstrap vocabulary).
  const auto check_reasoning_against_fresh_build = [&]() {
    // Terms admitted while a fold was in flight are still provisional —
    // inference over them is deferred until *their* re-encode, so drain
    // the registry before comparing reasoning answers.
    while (db->store().has_pending_schema()) {
      ASSERT_TRUE(db->Compact().ok());
    }
    rdf::Graph live;
    for (const rdf::Triple& t : oracle) live.Add(t);
    Database fresh;
    fresh.LoadOntology(onto);
    ASSERT_TRUE(fresh.LoadData(live).ok());
    db->set_reasoning(true);
    const std::string thing_query =
        "SELECT ?s WHERE { ?s a <" + std::string(rdf::kOwlThing) + "> }";
    const std::string top_query = "SELECT * WHERE { ?s <" +
                                  std::string(rdf::kOwlTopObjectProperty) +
                                  "> ?o }";
    for (const std::string& q :
         std::vector<std::string>{thing_query, top_query}) {
      const auto got = db->QueryCount(q);
      const auto want = fresh.QueryCount(q);
      ASSERT_TRUE(got.ok() && want.ok()) << q;
      ASSERT_EQ(got.value(), want.value())
          << "post-re-encode reasoning disagreement on: " << q;
    }
    db->set_reasoning(false);
  };

  int compactions = 0;
  int reopens = 0;
  for (int step = 0; step < 320; ++step) {
    const uint64_t dice = rng.Uniform(100);
    if (dice < 55) {
      const rdf::Triple t = random_triple();
      ASSERT_TRUE(db->Insert(t).ok());
      oracle.insert(t);
    } else if (dice < 80) {
      const rdf::Triple t = random_triple();
      ASSERT_TRUE(db->Remove(t).ok());
      oracle.erase(t);
    } else if (dice < 87) {
      // The epoch re-encode, riding the background-compaction fork/swap.
      ASSERT_TRUE(db->CompactAsync().ok());
      if (rng.Bernoulli(0.5)) {
        const rdf::Triple t = random_triple();  // write during the fold
        ASSERT_TRUE(db->Insert(t).ok());
        oracle.insert(t);
      }
      ASSERT_TRUE(db->WaitForCompaction().ok());
      ++compactions;
      check_reasoning_against_fresh_build();
    } else if (dice < 92) {
      ASSERT_TRUE(db->Compact().ok());
      ++compactions;
      check_reasoning_against_fresh_build();
    } else {
      db.reset();  // power cut: device-only recovery

      reopen();
      ++reopens;
      check_against_oracle();
    }
    if (step % 40 == 19) check_against_oracle();
  }
  db.reset();

  reopen();
  ++reopens;
  check_against_oracle();
  ASSERT_TRUE(db->Compact().ok());
  check_reasoning_against_fresh_build();
  ASSERT_GE(compactions, 10) << "rng drift: re-encode arm barely exercised";
  ASSERT_GE(reopens, 10) << "rng drift: reopen arm barely exercised";
}

// Merge join on/off must agree on every random query too.
TEST(EngineAgreementModes, MergeJoinAndOptimizerOnOffAgree) {
  Rng rng(99);
  rdf::Graph graph;
  for (int i = 0; i < 800; ++i) {
    graph.Add(rdf::Term::Iri(Iri("s", rng.Uniform(40))),
              rdf::Term::Iri(Iri("p", rng.Uniform(5))),
              rdf::Term::Iri(Iri("o", rng.Uniform(40))));
  }
  Database db;
  ASSERT_TRUE(db.LoadData(graph).ok());
  for (int trial = 0; trial < 20; ++trial) {
    const std::string q = "SELECT * WHERE { ?a <" + Iri("p", rng.Uniform(5)) +
                          "> ?b . ?b <" + Iri("p", rng.Uniform(5)) +
                          "> ?c . ?a <" + Iri("p", rng.Uniform(5)) + "> ?d }";
    uint64_t counts[4];
    int i = 0;
    for (const bool merge : {true, false}) {
      for (const bool opt : {true, false}) {
        db.set_merge_join(merge);
        db.set_optimizer(opt);
        const auto r = db.QueryCount(q);
        ASSERT_TRUE(r.ok());
        counts[i++] = r.value();
      }
    }
    EXPECT_EQ(counts[0], counts[1]) << q;
    EXPECT_EQ(counts[0], counts[2]) << q;
    EXPECT_EQ(counts[0], counts[3]) << q;
  }
}

}  // namespace
}  // namespace sedge
