// Delta-overlay write-path tests: insert/delete/re-insert semantics,
// equivalence between (base ∪ delta) and a from-scratch rebuild of the
// equivalent triple set, compaction idempotence, auto-compaction, and the
// streaming-from-empty bootstrap.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "rdf/vocabulary.h"
#include "sparql/sparql_parser.h"
#include "util/rng.h"
#include "workloads/sensor_generator.h"

namespace sedge {
namespace {

std::string Iri(const std::string& kind, uint64_t i) {
  return "http://e.org/" + kind + std::to_string(i);
}

rdf::Triple Obj(uint64_t s, uint64_t p, uint64_t o) {
  return {rdf::Term::Iri(Iri("s", s)), rdf::Term::Iri(Iri("p", p)),
          rdf::Term::Iri(Iri("o", o))};
}
rdf::Triple Dt(uint64_t s, uint64_t p, const std::string& value) {
  return {rdf::Term::Iri(Iri("s", s)), rdf::Term::Iri(Iri("dp", p)),
          rdf::Term::Literal(value)};
}
rdf::Triple Typ(uint64_t s, uint64_t c) {
  return {rdf::Term::Iri(Iri("s", s)), rdf::Term::Iri(rdf::kRdfType),
          rdf::Term::Iri(Iri("C", c))};
}

// A seed graph covering all three layouts, mentioning every predicate and
// class the tests write with (LiteMat ids are fixed at build time).
rdf::Graph SeedGraph() {
  rdf::Graph g;
  g.Add(Obj(0, 0, 10));
  g.Add(Obj(0, 1, 11));
  g.Add(Obj(1, 0, 10));
  g.Add(Obj(2, 1, 12));
  g.Add(Dt(0, 0, "1"));
  g.Add(Dt(1, 0, "2"));
  g.Add(Dt(1, 1, "3"));
  g.Add(Typ(0, 0));
  g.Add(Typ(1, 1));
  g.Add(Typ(2, 0));
  return g;
}

/// Canonical, order-insensitive serialization of a decoded query result.
std::vector<std::string> CanonicalRows(const sparql::QueryResult& result) {
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const auto& row : result.rows) {
    std::string key;
    for (const auto& cell : row) {
      key += cell ? cell->ToNTriples() : "<unbound>";
      key += '\x1f';
    }
    rows.push_back(std::move(key));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Asserts `db` answers `query` byte-identically (as a sorted multiset of
/// decoded rows) to a database rebuilt from scratch on `expected_graph`.
void ExpectSameAnswers(Database& db, const rdf::Graph& expected_graph,
                       const std::string& query) {
  Database fresh;
  ASSERT_TRUE(fresh.LoadData(expected_graph).ok());
  fresh.set_reasoning(db.options().reasoning);
  const auto got = db.Query(query);
  ASSERT_TRUE(got.ok()) << query << ": " << got.status().ToString();
  const auto want = fresh.Query(query);
  ASSERT_TRUE(want.ok()) << query << ": " << want.status().ToString();
  EXPECT_EQ(CanonicalRows(got.value()), CanonicalRows(want.value()))
      << "disagreement on: " << query;
}

const char* const kQueries[] = {
    "SELECT * WHERE { ?s <http://e.org/p0> ?o }",
    "SELECT * WHERE { ?s <http://e.org/p1> ?o }",
    "SELECT * WHERE { ?s <http://e.org/dp0> ?v }",
    "SELECT * WHERE { ?s <http://e.org/dp1> ?v }",
    "SELECT * WHERE { ?s a <http://e.org/C0> }",
    "SELECT * WHERE { ?s a ?c }",
    "SELECT * WHERE { ?s ?p ?o }",
    "SELECT * WHERE { ?s <http://e.org/p0> ?o . ?s <http://e.org/dp0> ?v }",
    "SELECT * WHERE { ?s a <http://e.org/C0> . ?s <http://e.org/p0> ?o }",
    "SELECT * WHERE { ?s <http://e.org/p0> <http://e.org/o10> }",
    "SELECT * WHERE { ?s <http://e.org/dp0> \"7\" }",
};

void ExpectAllQueriesAgree(Database& db, const rdf::Graph& expected) {
  for (const char* q : kQueries) ExpectSameAnswers(db, expected, q);
}

class DeltaOverlay : public ::testing::Test {
 protected:
  void SetUp() override {
    seed_ = SeedGraph();
    ASSERT_TRUE(db_.LoadData(seed_).ok());
    db_.set_compaction_ratio(0);  // tests trigger compaction explicitly
  }

  rdf::Graph seed_;
  Database db_;
};

TEST_F(DeltaOverlay, InsertThenQuery) {
  rdf::Graph live = seed_;
  const rdf::Triple added[] = {Obj(3, 0, 10), Obj(0, 0, 12), Dt(2, 1, "7"),
                               Typ(3, 1)};
  for (const rdf::Triple& t : added) {
    ASSERT_TRUE(db_.Insert(t).ok());
    live.Add(t);
  }
  EXPECT_TRUE(db_.store().has_delta());
  EXPECT_EQ(db_.num_triples(), seed_.size() + 4);
  ExpectAllQueriesAgree(db_, live);
}

TEST_F(DeltaOverlay, DeleteThenQuery) {
  ASSERT_TRUE(db_.Remove(Obj(0, 0, 10)).ok());
  ASSERT_TRUE(db_.Remove(Dt(1, 1, "3")).ok());
  ASSERT_TRUE(db_.Remove(Typ(2, 0)).ok());
  EXPECT_EQ(db_.num_triples(), seed_.size() - 3);

  rdf::Graph live;
  const std::set<std::string> removed = {Obj(0, 0, 10).ToNTriples(),
                                         Dt(1, 1, "3").ToNTriples(),
                                         Typ(2, 0).ToNTriples()};
  for (const rdf::Triple& t : seed_.triples()) {
    if (removed.count(t.ToNTriples()) == 0) live.Add(t);
  }
  ExpectAllQueriesAgree(db_, live);
}

TEST_F(DeltaOverlay, ReinsertAfterTombstone) {
  const rdf::Triple victim = Obj(0, 0, 10);
  ASSERT_TRUE(db_.Remove(victim).ok());
  EXPECT_EQ(db_.num_triples(), seed_.size() - 1);
  ASSERT_TRUE(db_.Insert(victim).ok());
  EXPECT_EQ(db_.num_triples(), seed_.size());
  ExpectAllQueriesAgree(db_, seed_);

  // Same dance on a datatype and a type triple.
  for (const rdf::Triple& t : {Dt(0, 0, "1"), Typ(1, 1)}) {
    ASSERT_TRUE(db_.Remove(t).ok());
    ASSERT_TRUE(db_.Insert(t).ok());
  }
  EXPECT_EQ(db_.num_triples(), seed_.size());
  ExpectAllQueriesAgree(db_, seed_);
}

TEST_F(DeltaOverlay, InsertDuplicateOfBaseIsNoOp) {
  for (const rdf::Triple& t : seed_.triples()) {
    ASSERT_TRUE(db_.Insert(t).ok());
  }
  EXPECT_FALSE(db_.store().has_delta());
  EXPECT_EQ(db_.num_triples(), seed_.size());
}

TEST_F(DeltaOverlay, RemoveAbsentIsNoOp) {
  ASSERT_TRUE(db_.Remove(Obj(7, 0, 7)).ok());
  ASSERT_TRUE(db_.Remove(Dt(7, 0, "nope")).ok());
  ASSERT_TRUE(db_.Remove(Typ(7, 1)).ok());
  EXPECT_FALSE(db_.store().has_delta());
  EXPECT_EQ(db_.num_triples(), seed_.size());
}

TEST_F(DeltaOverlay, CompactionPreservesAnswersAndIsIdempotent) {
  rdf::Graph live = seed_;
  for (const rdf::Triple& t :
       {Obj(4, 1, 11), Dt(3, 0, "9"), Typ(4, 0), Obj(4, 0, 10)}) {
    ASSERT_TRUE(db_.Insert(t).ok());
    live.Add(t);
  }
  ASSERT_TRUE(db_.Remove(Obj(1, 0, 10)).ok());
  rdf::Graph live2;
  for (const rdf::Triple& t : live.triples()) {
    if (!(t == Obj(1, 0, 10))) live2.Add(t);
  }

  const uint64_t before = db_.num_triples();
  const uint64_t gen = db_.store_generation();
  ASSERT_TRUE(db_.Compact().ok());
  EXPECT_EQ(db_.store_generation(), gen + 1);
  EXPECT_FALSE(db_.store().has_delta());
  EXPECT_EQ(db_.num_triples(), before);
  ExpectAllQueriesAgree(db_, live2);

  // Compacting an already-compacted store changes nothing.
  ASSERT_TRUE(db_.Compact().ok());
  EXPECT_EQ(db_.store_generation(), gen + 1);
  EXPECT_EQ(db_.num_triples(), before);
  ExpectAllQueriesAgree(db_, live2);
}

TEST_F(DeltaOverlay, AutoCompactionTriggersOnRatio) {
  db_.set_compaction_ratio(0.5);
  const uint64_t gen = db_.store_generation();
  // Base has 10 triples: the fifth overlay entry reaches 50% and compacts.
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(db_.Insert(Obj(10 + i, 0, 10)).ok());
  }
  EXPECT_EQ(db_.store_generation(), gen + 1);
  EXPECT_FALSE(db_.store().has_delta());
  EXPECT_EQ(db_.num_triples(), seed_.size() + 5);
}

TEST_F(DeltaOverlay, WriteGenerationTracksBatches) {
  const uint64_t w = db_.write_generation();
  ASSERT_TRUE(db_.Insert(Obj(5, 0, 10)).ok());
  ASSERT_TRUE(db_.Remove(Obj(5, 0, 10)).ok());
  EXPECT_EQ(db_.write_generation(), w + 2);
}

TEST_F(DeltaOverlay, UnknownSchemaInsertIsDeferredProvisional) {
  // A never-before-seen predicate no longer drops the triple: it is
  // admitted provisionally, reported as deferred, and queryable at once.
  const uint64_t skipped = db_.store().skipped_triples();
  Database::InsertReport report;
  ASSERT_TRUE(db_.Insert({rdf::Term::Iri(Iri("s", 0)),
                          rdf::Term::Iri("http://e.org/brand-new-pred"),
                          rdf::Term::Iri(Iri("o", 10))},
                         &report)
                  .ok());
  EXPECT_EQ(report.applied, 0u);
  EXPECT_EQ(report.deferred_provisional, 1u);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_EQ(report.admitted_terms, 1u);
  EXPECT_EQ(db_.store().skipped_triples(), skipped);
  EXPECT_EQ(db_.num_triples(), seed_.size() + 1);
  EXPECT_TRUE(db_.store().has_pending_schema());
  const auto hits = db_.QueryCount(
      "SELECT * WHERE { ?s <http://e.org/brand-new-pred> ?o }");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits.value(), 1u);
  // A second use of the predicate is no longer an admission.
  ASSERT_TRUE(db_.Insert({rdf::Term::Iri(Iri("s", 1)),
                          rdf::Term::Iri("http://e.org/brand-new-pred"),
                          rdf::Term::Iri(Iri("o", 11))},
                         &report)
                  .ok());
  EXPECT_EQ(report.deferred_provisional, 1u);
  EXPECT_EQ(report.admitted_terms, 0u);
}

TEST_F(DeltaOverlay, InsertReportCountsAreDisjointAndComplete) {
  rdf::Graph batch;
  batch.Add(Obj(3, 0, 10));                             // known schema
  batch.Add(Dt(3, 0, "5"));                             // known schema
  batch.Add({rdf::Term::Iri(Iri("s", 3)),
             rdf::Term::Iri("http://e.org/new-dp"),
             rdf::Term::Literal("42")});                // novel datatype pred
  batch.Add({rdf::Term::Iri(Iri("s", 3)), rdf::Term::Iri(rdf::kRdfType),
             rdf::Term::Iri("http://e.org/NewClass")});  // novel class
  batch.Add({rdf::Term::Literal("not-a-subject"),
             rdf::Term::Iri(Iri("p", 0)), rdf::Term::Iri(Iri("o", 0))});
  Database::InsertReport report;
  ASSERT_TRUE(db_.Insert(batch, &report).ok());
  EXPECT_EQ(report.applied, 2u);
  EXPECT_EQ(report.deferred_provisional, 2u);
  EXPECT_EQ(report.rejected, 1u);
  EXPECT_EQ(report.applied + report.deferred_provisional + report.rejected,
            batch.size());
  EXPECT_EQ(report.admitted_terms, 2u);

  // After a compaction the vocabulary is re-encoded: the same triples
  // would now count as plain applied duplicates.
  ASSERT_TRUE(db_.Compact().ok());
  EXPECT_FALSE(db_.store().has_pending_schema());
  rdf::Graph again;
  again.Add({rdf::Term::Iri(Iri("s", 4)),
             rdf::Term::Iri("http://e.org/new-dp"),
             rdf::Term::Literal("43")});
  ASSERT_TRUE(db_.Insert(again, &report).ok());
  EXPECT_EQ(report.applied, 1u);
  EXPECT_EQ(report.deferred_provisional, 0u);
  EXPECT_EQ(report.admitted_terms, 0u);
}

TEST(DeltaStreaming, StartsFromEmptyDatabase) {
  // The sensor ontology declares the full schema, so a stream of brand-new
  // observations needs no prior LoadData.
  Database db;
  db.LoadOntology(workloads::SensorGraphGenerator::BuildOntology());
  db.set_compaction_ratio(0);

  workloads::SensorConfig config;
  config.observations_per_sensor = 4;
  const rdf::Graph batch = workloads::SensorGraphGenerator::Generate(config);
  ASSERT_TRUE(db.Insert(batch).ok());
  EXPECT_GT(db.num_triples(), 0u);

  const std::string count_obs =
      "PREFIX sosa: <http://www.w3.org/ns/sosa/>\n"
      "SELECT ?o WHERE { ?o a sosa:Observation }";
  const auto streamed = db.QueryCount(count_obs);
  ASSERT_TRUE(streamed.ok());

  Database rebuilt;
  rebuilt.LoadOntology(workloads::SensorGraphGenerator::BuildOntology());
  ASSERT_TRUE(rebuilt.LoadData(batch).ok());
  const auto expected = rebuilt.QueryCount(count_obs);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(streamed.value(), expected.value());
  EXPECT_GT(streamed.value(), 0u);

  // The paper's anomaly query (reasoning + FILTER + BIND) over the overlay
  // agrees with the rebuilt store too.
  const std::string anomaly =
      workloads::SensorGraphGenerator::PressureAnomalyQuery();
  const auto a = db.QueryCount(anomaly);
  const auto b = rebuilt.QueryCount(anomaly);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST(DeltaStreaming, MultiBatchStreamMatchesMonolithicLoad) {
  Database streaming;
  streaming.LoadOntology(workloads::SensorGraphGenerator::BuildOntology());
  streaming.set_compaction_ratio(0.4);

  rdf::Graph all;
  for (int i = 0; i < 5; ++i) {
    workloads::SensorConfig config;
    config.seed = 100 + static_cast<uint64_t>(i);
    config.observations_per_sensor = 3;
    const rdf::Graph batch = workloads::SensorGraphGenerator::Generate(config);
    ASSERT_TRUE(streaming.Insert(batch).ok());
    all.Merge(batch);
  }

  Database monolithic;
  monolithic.LoadOntology(workloads::SensorGraphGenerator::BuildOntology());
  ASSERT_TRUE(monolithic.LoadData(all).ok());
  EXPECT_EQ(streaming.num_triples(), monolithic.num_triples());

  for (const char* q :
       {"PREFIX sosa: <http://www.w3.org/ns/sosa/>\n"
        "SELECT ?o WHERE { ?o a sosa:Observation }",
        "PREFIX sosa: <http://www.w3.org/ns/sosa/>\n"
        "SELECT DISTINCT ?x ?s WHERE { ?x a sosa:Platform ; sosa:hosts ?s }"}) {
    const auto a = streaming.QueryCount(q);
    const auto b = monolithic.QueryCount(q);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value(), b.value()) << q;
  }
}

// Randomized: interleaved inserts/deletes against a reference multiset,
// checking full-scan equivalence with a rebuilt store at every step batch.
TEST(DeltaRandomized, InterleavedWritesMatchRebuild) {
  Rng rng(4242);
  rdf::Graph seed;
  std::set<std::string> live_keys;
  const auto random_triple = [&rng]() -> rdf::Triple {
    const uint64_t kind = rng.Uniform(4);
    const uint64_t s = rng.Uniform(12);
    if (kind == 0) return Typ(s, rng.Uniform(3));
    if (kind == 1) return Dt(s, rng.Uniform(2), std::to_string(rng.Uniform(6)));
    return Obj(s, rng.Uniform(3), 20 + rng.Uniform(8));
  };
  // Seed must mention every predicate/class (ids are fixed at build time).
  for (uint64_t p = 0; p < 3; ++p) seed.Add(Obj(0, p, 20));
  for (uint64_t p = 0; p < 2; ++p) seed.Add(Dt(0, p, "0"));
  for (uint64_t c = 0; c < 3; ++c) seed.Add(Typ(0, c));
  for (int i = 0; i < 60; ++i) seed.Add(random_triple());
  for (const rdf::Triple& t : seed.triples()) live_keys.insert(t.ToNTriples());

  Database db;
  ASSERT_TRUE(db.LoadData(seed).ok());
  db.set_reasoning(false);
  db.set_compaction_ratio(0);

  std::vector<rdf::Triple> pool;
  for (int i = 0; i < 200; ++i) pool.push_back(random_triple());

  for (int step = 0; step < 300; ++step) {
    const rdf::Triple& t = pool[rng.Uniform(pool.size())];
    if (rng.Bernoulli(0.6)) {
      ASSERT_TRUE(db.Insert(t).ok());
      live_keys.insert(t.ToNTriples());
    } else {
      ASSERT_TRUE(db.Remove(t).ok());
      live_keys.erase(t.ToNTriples());
    }
    if (step % 50 == 17) {
      ASSERT_TRUE(db.Compact().ok());
    }
    if (step % 25 == 0 || step == 299) {
      EXPECT_EQ(db.num_triples(), live_keys.size()) << "step " << step;
      rdf::Graph live;
      std::set<std::string> seen;
      for (const rdf::Triple& x : seed.triples()) {
        if (live_keys.count(x.ToNTriples()) && seen.insert(x.ToNTriples()).second) {
          live.Add(x);
        }
      }
      for (const rdf::Triple& x : pool) {
        if (live_keys.count(x.ToNTriples()) && seen.insert(x.ToNTriples()).second) {
          live.Add(x);
        }
      }
      ExpectSameAnswers(db, live, "SELECT * WHERE { ?s ?p ?o }");
      ExpectSameAnswers(db, live,
                        "SELECT * WHERE { ?s <http://e.org/p0> ?o . "
                        "?s a ?c }");
    }
  }
}

}  // namespace
}  // namespace sedge
