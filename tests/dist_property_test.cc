// Distributed-query property test: a K-shard Coordinator must be
// indistinguishable from one Database loaded with the union graph.
//
// Phase 1 (deterministic): a 3-shard coordinator and a single-store
// oracle ingest the same LUBM stream — bulk base load, then insert
// batches, a removal wave, and per-shard background folds left in
// flight. At every quiescent point (writes applied to both, folds may
// still be running — a fold re-encodes ids but preserves content) every
// query of the LUBM mix (S11-S15, M1-M5, R1-R6; reasoning toggled per
// spec exactly as the paper's benches do) must return the identical
// solution set. This crosses every dist seam at once: subject-star
// decomposition, per-shard LiteMat reasoning, term-map reconciliation
// across re-encode epochs, coordinator hash/merge joins, and routed
// writes.
//
// Phase 2 (concurrent): client threads hammer a QueryService over a
// ShardedDatabase while a writer streams batches and kicks per-shard
// async folds. Every response must be OK (or a clean queue rejection),
// and after shutdown the quiesced coordinator must still equal an
// oracle holding the final content. Runs under the TSan CI job, where
// the interesting interleavings live.

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/sharded_database.h"
#include "dist/coordinator.h"
#include "rdf/term.h"
#include "rdf/triple.h"
#include "serve/query_service.h"
#include "workloads/lubm_generator.h"
#include "workloads/lubm_queries.h"

namespace sedge {
namespace {

using dist::Coordinator;
using dist::CoordinatorOptions;
using dist::PartitionPolicy;
using workloads::LubmGenerator;
using workloads::LubmQueries;
using workloads::QuerySpec;

constexpr int kShards = 3;

/// Order-independent rendering of a result set (rows sorted, duplicates
/// kept) — row order is not part of either engine's contract.
std::string Canonical(const sparql::QueryResult& result) {
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const auto& row : result.rows) {
    std::string r;
    for (const auto& cell : row) {
      r += cell.has_value() ? cell->ToNTriples() : "UNBOUND";
      r += '\t';
    }
    rows.push_back(std::move(r));
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const std::string& r : rows) {
    out += r;
    out += '\n';
  }
  return out;
}

rdf::Graph SmallLubm() {
  workloads::LubmConfig config;
  config.seed = 7;
  config.universities = 1;
  config.departments_per_university = 2;
  return LubmGenerator::Generate(config);
}

/// The evaluation mix with constants picked from the *full* graph, so
/// specs stay meaningful at every point of the stream (early on some
/// answer sets are simply smaller — both engines must agree anyway).
std::vector<QuerySpec> Mix(const rdf::Graph& full) {
  std::vector<QuerySpec> mix = LubmQueries::SingleP();
  for (auto& q : LubmQueries::Multi(full)) mix.push_back(std::move(q));
  for (auto& q : LubmQueries::Reasoning(full)) mix.push_back(std::move(q));
  return mix;
}

void ExpectAgreement(Coordinator& coord, Database& oracle,
                     const std::vector<QuerySpec>& mix,
                     const std::string& point) {
  for (const QuerySpec& spec : mix) {
    coord.set_reasoning(spec.reasoning);
    oracle.set_reasoning(spec.reasoning);
    const auto want = oracle.Query(spec.sparql);
    const auto got = coord.Query(spec.sparql);
    ASSERT_TRUE(want.ok()) << point << " oracle " << spec.id;
    ASSERT_TRUE(got.ok()) << point << " coordinator " << spec.id << " — "
                          << got.status().message();
    ASSERT_EQ(Canonical(got.value()), Canonical(want.value()))
        << point << " " << spec.id << ": " << spec.sparql;
  }
}

TEST(DistProperty, CoordinatorMatchesUnionOracleUnderWritesAndFolds) {
  const rdf::Graph full = SmallLubm();
  const std::vector<QuerySpec> mix = Mix(full);

  // Stream split: 70% bulk base, then three 10% insert batches.
  const size_t n = full.triples().size();
  const size_t base_end = n * 7 / 10;
  rdf::Graph base;
  for (size_t i = 0; i < base_end; ++i) base.Add(full.triples()[i]);

  CoordinatorOptions opts;
  opts.partition.policy = PartitionPolicy::kSubjectHash;
  opts.partition.shards = kShards;
  Coordinator coord(opts);
  coord.set_snapshot_isolation(true);
  coord.set_async_compaction(true);
  coord.set_compaction_ratio(0.0);  // folds only where the test kicks them
  coord.LoadOntology(LubmGenerator::BuildOntology());
  ASSERT_TRUE(coord.LoadData(base).ok());

  Database oracle;
  oracle.set_snapshot_isolation(true);
  oracle.set_compaction_ratio(0.0);
  oracle.LoadOntology(LubmGenerator::BuildOntology());
  ASSERT_TRUE(oracle.LoadData(base).ok());

  ExpectAgreement(coord, oracle, mix, "after base load");

  for (int round = 0; round < 3; ++round) {
    const size_t lo = base_end + static_cast<size_t>(round) * (n - base_end) / 3;
    const size_t hi =
        base_end + static_cast<size_t>(round + 1) * (n - base_end) / 3;
    rdf::Graph batch;
    for (size_t i = lo; i < hi; ++i) batch.Add(full.triples()[i]);
    ASSERT_TRUE(oracle.Insert(batch).ok());
    ASSERT_TRUE(coord.Insert(batch).ok());
    // Fold one shard per round and leave it in flight: content is
    // preserved, so agreement must hold while ids re-encode underneath.
    ASSERT_TRUE(coord.CompactShardAsync(round % kShards).ok());
    ExpectAgreement(coord, oracle, mix,
                    "after batch " + std::to_string(round));
  }

  // Removal wave: age out a slice of the base.
  rdf::Graph gone;
  for (size_t i = 0; i < base_end; i += 97) gone.Add(full.triples()[i]);
  ASSERT_TRUE(oracle.Remove(gone).ok());
  ASSERT_TRUE(coord.Remove(gone).ok());
  ExpectAgreement(coord, oracle, mix, "after removals");

  // Quiesce: finish in-flight folds, then fold everything synchronously.
  ASSERT_TRUE(coord.WaitForCompactions().ok());
  ASSERT_TRUE(coord.Compact().ok());
  ASSERT_TRUE(oracle.Compact().ok());
  ExpectAgreement(coord, oracle, mix, "after full fold");

  // The folds renumbered shard ids: reconciliation must have happened.
  EXPECT_GT(coord.term_map().refreshes(), 0u);
}

TEST(DistProperty, ConcurrentShardedServeStaysConsistent) {
  const rdf::Graph full = SmallLubm();
  const size_t n = full.triples().size();
  const size_t base_end = n * 8 / 10;
  rdf::Graph base;
  for (size_t i = 0; i < base_end; ++i) base.Add(full.triples()[i]);

  ShardedDatabase db(kShards);
  db.set_reasoning(false);
  db.set_async_compaction(true);
  db.set_compaction_ratio(0.0);
  db.LoadOntology(LubmGenerator::BuildOntology());
  ASSERT_TRUE(db.LoadData(base).ok());

  // Plain-BGP serve mix (reasoning stays off for the whole phase — the
  // toggle is not meant to race live queries).
  std::vector<std::string> queries;
  for (const QuerySpec& spec : LubmQueries::SingleP()) {
    queries.push_back(spec.sparql);
  }
  for (const QuerySpec& spec : LubmQueries::Multi(full)) {
    queries.push_back(spec.sparql);
  }

  serve::ServeOptions sopts;
  sopts.readers = 3;
  serve::QueryService service(&db, sopts);

  constexpr int kClients = 3;
  constexpr int kQueriesPerClient = 10;
  constexpr int kWriterBatches = 6;

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kQueriesPerClient; ++i) {
        const auto& q = queries[static_cast<size_t>(c + i * 3) % queries.size()];
        const auto resp = service.Execute(q);
        // OK or a clean queue rejection; anything else is a bug.
        if (!resp.status.ok() &&
            resp.status.code() != StatusCode::kResourceExhausted) {
          failures.fetch_add(1);
        }
      }
    });
  }

  std::thread writer([&] {
    for (int b = 0; b < kWriterBatches; ++b) {
      const size_t lo = base_end + static_cast<size_t>(b) * (n - base_end) /
                                       kWriterBatches;
      const size_t hi = base_end + static_cast<size_t>(b + 1) *
                                       (n - base_end) / kWriterBatches;
      rdf::Graph batch;
      for (size_t i = lo; i < hi; ++i) batch.Add(full.triples()[i]);
      if (!db.Insert(batch).ok()) failures.fetch_add(1);
      if (!db.CompactShardAsync(b % kShards).ok()) failures.fetch_add(1);
    }
  });

  for (auto& t : clients) t.join();
  writer.join();
  service.Shutdown();
  EXPECT_EQ(failures.load(), 0);

  // Quiesced, the coordinator holds exactly the full graph — compare
  // against a fresh oracle.
  ASSERT_TRUE(db.WaitForCompaction().ok());
  Database oracle;
  oracle.set_reasoning(false);
  ASSERT_TRUE(oracle.LoadData(full).ok());
  EXPECT_EQ(db.num_triples(), oracle.num_triples());
  for (const auto& q : queries) {
    const auto want = oracle.Query(q);
    const auto got = db.Query(q);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok()) << got.status().message();
    ASSERT_EQ(Canonical(got.value()), Canonical(want.value())) << q;
  }
}

}  // namespace
}  // namespace sedge
