// Crash-recovery harness for the delta-overlay write-ahead log.
//
// FailingBlockDevice cuts the device after N block writes (optionally
// tearing the N+1-th mid-block), simulating a power cut on the SD card at
// an arbitrary point of a scripted mutation history. The tests assert the
// WAL's crash contract:
//
//   1. every mutation whose write call returned OK (acknowledged) is
//      recovered by replay onto a fresh store built from the base
//      snapshot;
//   2. the recovered state is *exactly* some prefix of the logged record
//      sequence — a torn or CRC-corrupt tail never yields a frankenstate;
//   3. after a cut mid-record, the reopened Database answers queries
//      identically to the pre-crash in-memory state (acceptance
//      criterion).

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "io/failing_block_device.h"
#include "io/wal.h"
#include "rdf/vocabulary.h"
#include "util/rng.h"

namespace sedge {
namespace {

std::string Iri(const std::string& kind, uint64_t i) {
  return "http://e.org/" + kind + std::to_string(i);
}

/// Seed graph pinning every predicate/class the script uses: LiteMat ids
/// are fixed at build time, so the recovery snapshot must mention the full
/// schema (the pinned subject is never removed by the script).
rdf::Graph SeedGraph() {
  rdf::Graph seed;
  const rdf::Term pin = rdf::Term::Iri("http://e.org/pin");
  for (uint64_t p = 0; p < 3; ++p) {
    seed.Add(pin, rdf::Term::Iri(Iri("p", p)), rdf::Term::Iri(Iri("o", 0)));
  }
  for (uint64_t p = 0; p < 2; ++p) {
    seed.Add(pin, rdf::Term::Iri(Iri("dp", p)), rdf::Term::Literal("0"));
  }
  for (uint64_t c = 0; c < 3; ++c) {
    seed.Add(pin, rdf::Term::Iri(rdf::kRdfType),
             rdf::Term::Iri(Iri("C", c)));
  }
  return seed;
}

struct Mutation {
  bool insert;
  rdf::Triple triple;
};

/// Deterministic mutation script: inserts with occasional removes of
/// earlier triples, spanning all three storage layouts.
std::vector<Mutation> MutationScript(uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<Mutation> script;
  std::vector<rdf::Triple> inserted;
  for (int i = 0; i < n; ++i) {
    if (!inserted.empty() && rng.Bernoulli(0.3)) {
      script.push_back(
          {false, inserted[rng.Uniform(inserted.size())]});
      continue;
    }
    const std::string s = Iri("s", rng.Uniform(12));
    rdf::Triple t;
    const uint64_t kind = rng.Uniform(4);
    if (kind == 0) {
      t = {rdf::Term::Iri(s), rdf::Term::Iri(rdf::kRdfType),
           rdf::Term::Iri(Iri("C", rng.Uniform(3)))};
    } else if (kind == 1) {
      t = {rdf::Term::Iri(s), rdf::Term::Iri(Iri("dp", rng.Uniform(2))),
           rdf::Term::Literal(std::to_string(rng.Uniform(50)))};
    } else {
      t = {rdf::Term::Iri(s), rdf::Term::Iri(Iri("p", rng.Uniform(3))),
           rdf::Term::Iri(Iri("o", rng.Uniform(12)))};
    }
    script.push_back({true, t});
    inserted.push_back(t);
  }
  return script;
}

std::set<rdf::Triple> ToSet(const rdf::Graph& graph) {
  return {graph.triples().begin(), graph.triples().end()};
}

/// Oracle states after applying each script prefix to the seed.
std::vector<std::set<rdf::Triple>> OraclePrefixStates(
    const rdf::Graph& seed, const std::vector<Mutation>& script) {
  std::vector<std::set<rdf::Triple>> states;
  std::set<rdf::Triple> live = ToSet(seed);
  states.push_back(live);
  for (const Mutation& m : script) {
    if (m.insert) {
      live.insert(m.triple);
    } else {
      live.erase(m.triple);
    }
    states.push_back(live);
  }
  return states;
}

/// Builds a recovery Database: base snapshot reload + WAL replay.
void Recover(const rdf::Graph& snapshot, io::WriteAheadLog* wal,
             Database* db) {
  ASSERT_TRUE(db->LoadData(snapshot).ok());
  db->set_reasoning(false);
  db->set_compaction_ratio(0);
  ASSERT_TRUE(wal->Open().ok()) << "reads must survive the crash";
  const Status st = db->AttachWal(wal);
  ASSERT_TRUE(st.ok()) << st.ToString();
}

// The sweep: cut the device after every plausible write count, with
// several tear sizes (0 = write dropped whole, small/large = torn
// mid-block), and check invariants 1+2 at each cut point.
TEST(WalRecovery, RecoversExactlyAPrefixAtEveryCutPoint) {
  const rdf::Graph seed = SeedGraph();
  const std::vector<Mutation> script = MutationScript(/*seed=*/4242, 40);
  const auto oracle = OraclePrefixStates(seed, script);

  int cuts_exercised = 0;
  for (const uint64_t torn_bytes : {0ULL, 13ULL, 300ULL, 2000ULL, 4096ULL}) {
    for (uint64_t budget = 1; budget <= 50; budget += 3) {
      io::FailingBlockDevice device(budget, torn_bytes);
      io::WriteAheadLog wal(&device);
      ASSERT_TRUE(wal.Open().ok());  // header write fits budget >= 1

      Database db;
      ASSERT_TRUE(db.LoadData(seed).ok());
      db.set_reasoning(false);
      db.set_compaction_ratio(0);
      ASSERT_TRUE(db.AttachWal(&wal).ok());

      // Apply until the power cut; count acknowledged mutations.
      size_t acked = 0;
      size_t submitted = 0;
      for (const Mutation& m : script) {
        ++submitted;
        const Status st =
            m.insert ? db.Insert(m.triple) : db.Remove(m.triple);
        if (!st.ok()) break;
        ++acked;
      }
      if (acked == script.size()) {
        // Budget large enough that no cut happened under this script.
        continue;
      }
      ++cuts_exercised;

      Database recovered;
      io::WriteAheadLog reopened(&device);
      Recover(seed, &reopened, &recovered);

      // Invariant 2: the recovered state is exactly oracle[R] for one
      // prefix length R...
      const std::set<rdf::Triple> got = ToSet(recovered.store().ExportGraph());
      int matched_prefix = -1;
      for (size_t r = 0; r < oracle.size(); ++r) {
        if (got == oracle[r]) {
          matched_prefix = static_cast<int>(r);
          break;
        }
      }
      ASSERT_GE(matched_prefix, 0)
          << "budget " << budget << " torn " << torn_bytes
          << ": recovered state matches no script prefix";
      // ...and invariant 1: that prefix covers every acknowledged
      // mutation (it may extend into the batch whose sync failed — a
      // record can be durable without having been acknowledged, never
      // the other way around).
      EXPECT_GE(static_cast<size_t>(matched_prefix), acked)
          << "budget " << budget << " torn " << torn_bytes
          << ": an acknowledged mutation was lost";
      EXPECT_LE(static_cast<size_t>(matched_prefix), submitted);
      EXPECT_EQ(recovered.num_triples(), oracle[matched_prefix].size());
    }
  }
  // The sweep must actually have crossed the interesting region.
  ASSERT_GT(cuts_exercised, 20);
}

// Batch atomicity: multi-triple batches are one Sync() each, sealed by a
// commit marker. A power cut mid-sync may durably persist a *prefix* of a
// batch's records — replay must never apply it. The sweep cuts the device
// after every plausible write count and asserts the recovered state lands
// exactly on a batch boundary: every acknowledged batch present, the
// failed batch either fully recovered (its commit block made it just
// before the cut) or fully absent, never split down the middle.
TEST(WalRecovery, CutMidSyncNeverReplaysAPartialBatch) {
  const rdf::Graph seed = SeedGraph();

  // Multi-triple batches, each all-insert or all-remove so one batch is
  // exactly one group-committed Sync(). Removes only ever target triples
  // from strictly earlier batches, so the per-batch oracle is unambiguous.
  struct Batch {
    bool insert;
    rdf::Graph graph;
  };
  std::vector<Batch> batches;
  {
    Rng rng(1313);
    std::vector<rdf::Triple> pool;  // inserted in earlier batches
    for (int b = 0; b < 10; ++b) {
      Batch batch;
      batch.insert = !(b % 3 == 2 && pool.size() >= 6);
      // 40 records per batch: the frame stream spans several device
      // blocks, so a cut can land with a strict prefix of the batch
      // durable — the exact case the commit marker must make invisible.
      if (batch.insert) {
        for (int i = 0; i < 40; ++i) {
          const std::string s = Iri("s", rng.Uniform(12));
          rdf::Triple t;
          const uint64_t kind = rng.Uniform(4);
          if (kind == 0) {
            t = {rdf::Term::Iri(s), rdf::Term::Iri(rdf::kRdfType),
                 rdf::Term::Iri(Iri("C", rng.Uniform(3)))};
          } else if (kind == 1) {
            t = {rdf::Term::Iri(s), rdf::Term::Iri(Iri("dp", rng.Uniform(2))),
                 rdf::Term::Literal(std::to_string(rng.Uniform(50)))};
          } else {
            t = {rdf::Term::Iri(s), rdf::Term::Iri(Iri("p", rng.Uniform(3))),
                 rdf::Term::Iri(Iri("o", rng.Uniform(12)))};
          }
          batch.graph.Add(t);
          pool.push_back(t);
        }
      } else {
        for (int i = 0; i < 40; ++i) {
          batch.graph.Add(pool[rng.Uniform(pool.size())]);
        }
      }
      batches.push_back(std::move(batch));
    }
  }

  // Oracle: live set after each whole batch.
  std::vector<std::set<rdf::Triple>> oracle;
  {
    std::set<rdf::Triple> live = ToSet(seed);
    oracle.push_back(live);
    for (const Batch& batch : batches) {
      for (const rdf::Triple& t : batch.graph.triples()) {
        if (batch.insert) {
          live.insert(t);
        } else {
          live.erase(t);
        }
      }
      oracle.push_back(live);
    }
  }

  int cuts_exercised = 0;
  for (const uint64_t torn_bytes : {0ULL, 17ULL, 1000ULL, 4096ULL}) {
    for (uint64_t budget = 1; budget <= 40; budget += 2) {
      io::FailingBlockDevice device(budget, torn_bytes);
      io::WriteAheadLog wal(&device);
      ASSERT_TRUE(wal.Open().ok());

      Database db;
      ASSERT_TRUE(db.LoadData(seed).ok());
      db.set_reasoning(false);
      db.set_compaction_ratio(0);
      ASSERT_TRUE(db.AttachWal(&wal).ok());

      size_t acked = 0;
      for (const Batch& batch : batches) {
        const Status st = batch.insert ? db.Insert(batch.graph)
                                       : db.Remove(batch.graph);
        if (!st.ok()) break;
        ++acked;
      }
      if (acked == batches.size()) continue;  // budget never hit
      ++cuts_exercised;

      Database recovered;
      io::WriteAheadLog reopened(&device);
      Recover(seed, &reopened, &recovered);

      const std::set<rdf::Triple> got =
          ToSet(recovered.store().ExportGraph());
      // Exactly two states are admissible after the cut: every acked
      // batch is durable, and the single batch in flight is either fully
      // recovered (its trailing commit block landed right before the
      // cut, durable-but-unacknowledged) or fully absent — never split.
      const bool admissible =
          got == oracle[acked] || got == oracle[acked + 1];
      ASSERT_TRUE(admissible)
          << "budget " << budget << " torn " << torn_bytes << " acked "
          << acked
          << ": recovered state is not a committed-batch boundary "
             "(partial batch replayed, or an acked batch was lost)";
    }
  }
  ASSERT_GT(cuts_exercised, 15);
}

// Acceptance criterion: cut the log mid-record (a record spanning several
// blocks, only the first of which lands) and prove the reopened Database
// answers queries identically to the pre-crash state.
TEST(WalRecovery, MidRecordCutAnswersQueriesLikePreCrashState) {
  const rdf::Graph seed = SeedGraph();
  const std::vector<Mutation> script = MutationScript(/*seed=*/777, 25);

  // The final, never-acknowledged mutation: a datatype triple whose ~9 KiB
  // literal guarantees its record spans >= 3 blocks, so a one-block budget
  // cuts it mid-record.
  const rdf::Triple big = {rdf::Term::Iri(Iri("s", 1)),
                           rdf::Term::Iri(Iri("dp", 0)),
                           rdf::Term::Literal(std::string(9000, 'x'))};

  const std::vector<std::string> queries = {
      "SELECT * WHERE { ?s <" + Iri("p", 0) + "> ?o }",
      "SELECT * WHERE { ?s <" + Iri("dp", 0) + "> ?v }",
      "SELECT * WHERE { ?s a <" + Iri("C", 1) + "> }",
      "SELECT * WHERE { ?s <" + Iri("p", 1) + "> ?m . ?m <" + Iri("p", 2) +
          "> ?o }",
  };

  // Pass A: plain device, measure the block writes consumed by the
  // acknowledged history (everything before the big insert).
  uint64_t writes_before_final_sync = 0;
  {
    io::SimulatedBlockDevice device;
    io::WriteAheadLog wal(&device);
    ASSERT_TRUE(wal.Open().ok());
    Database db;
    ASSERT_TRUE(db.LoadData(seed).ok());
    db.set_reasoning(false);
    db.set_compaction_ratio(0);
    ASSERT_TRUE(db.AttachWal(&wal).ok());
    for (const Mutation& m : script) {
      ASSERT_TRUE((m.insert ? db.Insert(m.triple) : db.Remove(m.triple)).ok());
    }
    writes_before_final_sync = device.stats().writes;
  }

  // Pass B: same deterministic history on a device that survives exactly
  // one more block write — the first block of the big record lands, the
  // rest of the record is lost. Torn tail, cut mid-record.
  io::FailingBlockDevice device(writes_before_final_sync + 1,
                                /*torn_bytes=*/0);
  io::WriteAheadLog wal(&device);
  ASSERT_TRUE(wal.Open().ok());
  Database db;
  ASSERT_TRUE(db.LoadData(seed).ok());
  db.set_reasoning(false);
  db.set_compaction_ratio(0);
  ASSERT_TRUE(db.AttachWal(&wal).ok());
  for (const Mutation& m : script) {
    ASSERT_TRUE((m.insert ? db.Insert(m.triple) : db.Remove(m.triple)).ok());
  }
  EXPECT_FALSE(db.Insert(big).ok()) << "the cut batch must not be acked";
  ASSERT_TRUE(device.failed());

  // Pre-crash reference: the still-live Database (the failed insert was
  // never applied — log-before-apply).
  const auto render = [](const sparql::QueryResult& result) {
    std::vector<std::string> rows;
    for (const auto& row : result.rows) {
      std::string s;
      for (const auto& cell : row) {
        s += cell.has_value() ? cell->ToNTriples() : "UNBOUND";
        s += '\t';
      }
      rows.push_back(std::move(s));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  std::vector<std::vector<std::string>> pre_crash;
  for (const std::string& q : queries) {
    const auto r = db.Query(q);
    ASSERT_TRUE(r.ok()) << q;
    pre_crash.push_back(render(r.value()));
  }
  const uint64_t pre_crash_triples = db.num_triples();

  // Power cut; reopen on the same device.
  Database recovered;
  io::WriteAheadLog reopened(&device);
  Recover(seed, &reopened, &recovered);

  EXPECT_EQ(recovered.num_triples(), pre_crash_triples);
  EXPECT_EQ(ToSet(recovered.store().ExportGraph()),
            ToSet(db.store().ExportGraph()));
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto r = recovered.Query(queries[i]);
    ASSERT_TRUE(r.ok()) << queries[i];
    EXPECT_EQ(render(r.value()), pre_crash[i])
        << "post-recovery disagreement on: " << queries[i];
  }
  // And the torn record's triple is really gone.
  const auto absent = recovered.Query(
      "SELECT * WHERE { ?s <" + Iri("dp", 0) + "> \"" +
      std::string(9000, 'x') + "\" }");
  ASSERT_TRUE(absent.ok());
  EXPECT_EQ(absent.value().size(), 0u);
}

// A cut *between* batches (clean tail) must recover everything.
TEST(WalRecovery, CleanCutRecoversAllAcknowledgedBatches) {
  const rdf::Graph seed = SeedGraph();

  io::FailingBlockDevice device(/*writes_before_failure=*/1000);
  io::WriteAheadLog wal(&device);
  ASSERT_TRUE(wal.Open().ok());
  Database db;
  ASSERT_TRUE(db.LoadData(seed).ok());
  db.set_reasoning(false);
  db.set_compaction_ratio(0);
  ASSERT_TRUE(db.AttachWal(&wal).ok());

  // Batched graph inserts — group commit, one sync per batch.
  Rng rng(9);
  for (int b = 0; b < 6; ++b) {
    rdf::Graph batch;
    for (int i = 0; i < 15; ++i) {
      batch.Add(rdf::Term::Iri(Iri("s", rng.Uniform(20))),
                rdf::Term::Iri(Iri("p", rng.Uniform(3))),
                rdf::Term::Iri(Iri("o", rng.Uniform(20))));
    }
    ASSERT_TRUE(db.Insert(batch).ok());
  }

  Database recovered;
  io::WriteAheadLog reopened(&device);
  Recover(seed, &reopened, &recovered);
  EXPECT_EQ(recovered.num_triples(), db.num_triples());
  EXPECT_EQ(ToSet(recovered.store().ExportGraph()),
            ToSet(db.store().ExportGraph()));
}

// In standalone-WAL mode (no checkpoint device) nothing persists the
// folded base, so compaction must NOT truncate the log: recovery from the
// originally loaded data plus the full log must still reach the
// post-compaction state.
TEST(WalRecovery, CompactionWithoutCheckpointDeviceKeepsLogComplete) {
  const rdf::Graph seed = SeedGraph();
  const std::vector<Mutation> script = MutationScript(/*seed=*/55, 30);

  io::SimulatedBlockDevice device;
  io::WriteAheadLog wal(&device);
  ASSERT_TRUE(wal.Open().ok());
  Database db;
  ASSERT_TRUE(db.LoadData(seed).ok());
  db.set_reasoning(false);
  db.set_compaction_ratio(0);
  ASSERT_TRUE(db.AttachWal(&wal).ok());

  const uint64_t epoch_before = wal.epoch();
  for (size_t i = 0; i < script.size(); ++i) {
    const Mutation& m = script[i];
    ASSERT_TRUE((m.insert ? db.Insert(m.triple) : db.Remove(m.triple)).ok());
    if (i % 10 == 9) ASSERT_TRUE(db.Compact().ok());
  }
  EXPECT_EQ(wal.epoch(), epoch_before)
      << "no checkpoint device -> compaction must not truncate";

  Database recovered;
  io::WriteAheadLog reopened(&device);
  Recover(seed, &reopened, &recovered);
  EXPECT_EQ(ToSet(recovered.store().ExportGraph()),
            ToSet(db.store().ExportGraph()));
}

// A batch containing an unloggable triple (multi-MiB literal) is rejected
// as a whole: not applied, not in the log, and the database + log stay
// usable — log and store never diverge.
TEST(WalRecovery, OversizedBatchRejectedAtomically) {
  const rdf::Graph seed = SeedGraph();
  io::SimulatedBlockDevice device;
  io::WriteAheadLog wal(&device);
  ASSERT_TRUE(wal.Open().ok());
  Database db;
  ASSERT_TRUE(db.LoadData(seed).ok());
  db.set_reasoning(false);
  db.set_compaction_ratio(0);
  ASSERT_TRUE(db.AttachWal(&wal).ok());
  const uint64_t before = db.num_triples();

  rdf::Graph batch;
  batch.Add(rdf::Term::Iri(Iri("s", 0)), rdf::Term::Iri(Iri("p", 0)),
            rdf::Term::Iri(Iri("o", 5)));
  batch.Add(rdf::Term::Iri(Iri("s", 0)), rdf::Term::Iri(Iri("dp", 0)),
            rdf::Term::Literal(std::string(2u << 20, 'x')));
  ASSERT_FALSE(db.Insert(batch).ok());
  EXPECT_EQ(db.num_triples(), before) << "no partial application";
  EXPECT_EQ(wal.ReplayableMutations().ValueOr(99), 0u) << "nothing logged";

  // Both stay usable afterwards.
  const rdf::Triple ok_triple = {rdf::Term::Iri(Iri("s", 0)),
                                 rdf::Term::Iri(Iri("p", 0)),
                                 rdf::Term::Iri(Iri("o", 6))};
  ASSERT_TRUE(db.Insert(ok_triple).ok());
  Database recovered;
  io::WriteAheadLog reopened(&device);
  Recover(seed, &reopened, &recovered);
  EXPECT_EQ(ToSet(recovered.store().ExportGraph()),
            ToSet(db.store().ExportGraph()));
}

}  // namespace
}  // namespace sedge
