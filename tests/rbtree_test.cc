// Tests for the from-scratch red-black tree against std::map as reference.

#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "rbtree/rb_tree.h"
#include "util/rng.h"

namespace sedge::rbtree {
namespace {

TEST(RbTree, EmptyTree) {
  RbTree<int, int> tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Find(42), nullptr);
  EXPECT_FALSE(tree.Contains(42));
  EXPECT_GE(tree.ValidateInvariants(), 0);
}

TEST(RbTree, InsertAndFind) {
  RbTree<int, std::string> tree;
  tree.GetOrInsert(5) = "five";
  tree.GetOrInsert(1) = "one";
  tree.GetOrInsert(9) = "nine";
  EXPECT_EQ(tree.size(), 3u);
  ASSERT_NE(tree.Find(5), nullptr);
  EXPECT_EQ(*tree.Find(5), "five");
  EXPECT_EQ(tree.Find(7), nullptr);
  // Upsert: GetOrInsert on an existing key returns the same slot.
  tree.GetOrInsert(5) = "FIVE";
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(*tree.Find(5), "FIVE");
}

TEST(RbTree, InOrderTraversalIsSorted) {
  Rng rng(99);
  RbTree<uint64_t, uint64_t> tree;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t k = rng.Uniform(500);  // plenty of duplicate keys
    tree.GetOrInsert(k) = k * 2;
  }
  std::vector<uint64_t> keys;
  tree.ForEach([&](const uint64_t& k, const uint64_t& v) {
    EXPECT_EQ(v, k * 2);
    keys.push_back(k);
  });
  ASSERT_EQ(keys.size(), tree.size());
  for (size_t i = 1; i < keys.size(); ++i) {
    EXPECT_LT(keys[i - 1], keys[i]);
  }
}

class RbTreeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RbTreeProperty, MatchesStdMapAndKeepsInvariants) {
  const uint64_t n = GetParam();
  Rng rng(n);
  RbTree<uint64_t, uint64_t> tree;
  std::map<uint64_t, uint64_t> reference;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t k = rng.Uniform(n * 2 + 1);
    const uint64_t v = rng.Next();
    tree.GetOrInsert(k) = v;
    reference[k] = v;
  }
  ASSERT_EQ(tree.size(), reference.size());
  ASSERT_GE(tree.ValidateInvariants(), 0) << "red-black invariants violated";
  for (const auto& [k, v] : reference) {
    const uint64_t* found = tree.Find(k);
    ASSERT_NE(found, nullptr) << "missing key " << k;
    ASSERT_EQ(*found, v);
  }
  // Range scans agree with the reference on random windows.
  for (int trial = 0; trial < 50; ++trial) {
    uint64_t lo = rng.Uniform(n * 2 + 2);
    uint64_t hi = rng.Uniform(n * 2 + 2);
    if (lo > hi) std::swap(lo, hi);
    std::vector<uint64_t> expect;
    for (auto it = reference.lower_bound(lo);
         it != reference.end() && it->first < hi; ++it) {
      expect.push_back(it->first);
    }
    std::vector<uint64_t> got;
    tree.ForEachInRange(lo, hi, [&](const uint64_t& k, const uint64_t&) {
      got.push_back(k);
    });
    ASSERT_EQ(got, expect) << "range [" << lo << "," << hi << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RbTreeProperty,
                         ::testing::Values(1, 2, 10, 100, 1000, 20000));

TEST(RbTree, SortedInsertionStaysBalanced) {
  RbTree<int, int> tree;
  for (int i = 0; i < 10000; ++i) tree.GetOrInsert(i) = i;
  const int black_height = tree.ValidateInvariants();
  ASSERT_GE(black_height, 0);
  // A valid RB tree of 10k nodes has black height <= ~log2(n)+1.
  EXPECT_LE(black_height, 16);
}

TEST(RbTree, LowerBound) {
  RbTree<int, int> tree;
  for (int k : {10, 20, 30}) tree.GetOrInsert(k) = k;
  ASSERT_NE(tree.LowerBound(15), nullptr);
  EXPECT_EQ(*tree.LowerBound(15), 20);
  EXPECT_EQ(*tree.LowerBound(10), 10);
  EXPECT_EQ(tree.LowerBound(31), nullptr);
}

TEST(RbTree, MoveTransfersOwnership) {
  RbTree<int, int> a;
  a.GetOrInsert(1) = 10;
  RbTree<int, int> b = std::move(a);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(*b.Find(1), 10);
}

}  // namespace
}  // namespace sedge::rbtree
