// Background-compaction concurrency tests: readers and writers racing
// CompactAsync(), with the final state checked against a serial oracle.
//
// Concurrency contract exercised here (and gated by the ThreadSanitizer
// CI job): queries pin a generation snapshot and may run concurrently
// with each other and with the whole background fold (freeze, export,
// rebuild, relay catch-up, swap); writes are serialized by the Database
// and may also overlap the fold. Queries are not raced against individual
// write batches *here* — these tests run without snapshot isolation, so
// that pairing stays outside the single-writer seal contract (see
// store/delta/delta_set.h). The snapshot-isolation mode that makes it
// safe is exercised by concurrent_serve_property_test.cc and
// query_service_test.cc.

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "io/block_device.h"
#include "rdf/vocabulary.h"
#include "util/rng.h"

namespace sedge {
namespace {

std::string Iri(const std::string& kind, uint64_t i) {
  return "http://e.org/" + kind + std::to_string(i);
}

rdf::Graph SeedGraph(int extra) {
  rdf::Graph seed;
  const rdf::Term pin = rdf::Term::Iri("http://e.org/pin");
  for (uint64_t p = 0; p < 3; ++p) {
    seed.Add(pin, rdf::Term::Iri(Iri("p", p)), rdf::Term::Iri(Iri("o", 0)));
  }
  for (uint64_t p = 0; p < 2; ++p) {
    seed.Add(pin, rdf::Term::Iri(Iri("dp", p)), rdf::Term::Literal("0"));
  }
  for (uint64_t c = 0; c < 3; ++c) {
    seed.Add(pin, rdf::Term::Iri(rdf::kRdfType), rdf::Term::Iri(Iri("C", c)));
  }
  Rng rng(1234);
  for (int i = 0; i < extra; ++i) {
    seed.Add(rdf::Term::Iri(Iri("s", rng.Uniform(40))),
             rdf::Term::Iri(Iri("p", rng.Uniform(3))),
             rdf::Term::Iri(Iri("o", rng.Uniform(40))));
  }
  return seed;
}

std::set<rdf::Triple> ToSet(const rdf::Graph& graph) {
  return {graph.triples().begin(), graph.triples().end()};
}

struct Mutation {
  bool insert;
  rdf::Triple triple;
};

/// Mutation script over subjects prefixed `subject_space`: two scripts
/// with different prefixes touch disjoint triples, so any interleaving of
/// two sequential writers converges to the same final set as running them
/// serially (each script's removes only ever target its own inserts).
std::vector<Mutation> MutationScript(uint64_t seed,
                                     const std::string& subject_space,
                                     int n) {
  Rng rng(seed);
  std::vector<Mutation> script;
  std::vector<rdf::Triple> inserted;
  for (int i = 0; i < n; ++i) {
    if (!inserted.empty() && rng.Bernoulli(0.25)) {
      script.push_back({false, inserted[rng.Uniform(inserted.size())]});
      continue;
    }
    rdf::Triple t;
    const std::string s = Iri(subject_space, rng.Uniform(40));
    const uint64_t kind = rng.Uniform(4);
    if (kind == 0) {
      t = {rdf::Term::Iri(s), rdf::Term::Iri(rdf::kRdfType),
           rdf::Term::Iri(Iri("C", rng.Uniform(3)))};
    } else if (kind == 1) {
      t = {rdf::Term::Iri(s), rdf::Term::Iri(Iri("dp", rng.Uniform(2))),
           rdf::Term::Literal(std::to_string(rng.Uniform(60)))};
    } else {
      t = {rdf::Term::Iri(s), rdf::Term::Iri(Iri("p", rng.Uniform(3))),
           rdf::Term::Iri(Iri("o", rng.Uniform(40)))};
    }
    script.push_back({true, t});
    inserted.push_back(t);
  }
  return script;
}

// Writers streaming batches while CompactAsync() folds repeatedly in the
// background: the final triple set must equal a serial oracle that never
// compacted at all.
TEST(CompactionConcurrency, WritersRacingCompactAsyncMatchSerialOracle) {
  const rdf::Graph seed = SeedGraph(300);
  // Disjoint subject spaces: any interleaving of the two sequential
  // writers converges to the same final set as applying both serially.
  const std::vector<Mutation> script_a = MutationScript(2026, "sa", 300);
  const std::vector<Mutation> script_b = MutationScript(2027, "sb", 300);

  Database db;
  ASSERT_TRUE(db.LoadData(seed).ok());
  db.set_reasoning(false);
  db.set_compaction_ratio(0);  // the test triggers folds explicitly

  std::atomic<bool> writers_done{false};
  std::atomic<int> compactions_started{0};

  // Compactor thread: keep kicking background folds while writes stream.
  std::thread compactor([&]() {
    while (!writers_done.load()) {
      ASSERT_TRUE(db.CompactAsync().ok());
      ++compactions_started;
      std::this_thread::yield();
    }
  });

  // Two writer threads, one script each (Database serializes them).
  const auto run_script = [&](const std::vector<Mutation>& script) {
    for (const Mutation& m : script) {
      const Status st =
          m.insert ? db.Insert(m.triple) : db.Remove(m.triple);
      ASSERT_TRUE(st.ok());
    }
  };
  std::thread w1(run_script, std::cref(script_a));
  std::thread w2(run_script, std::cref(script_b));
  w1.join();
  w2.join();
  writers_done.store(true);
  compactor.join();
  ASSERT_TRUE(db.WaitForCompaction().ok());
  ASSERT_TRUE(db.Compact().ok());  // final fold for a clean comparison
  ASSERT_GT(compactions_started.load(), 0);
  EXPECT_FALSE(db.store().has_delta());

  // Serial oracle: both scripts applied on one thread, no compaction.
  Database oracle;
  ASSERT_TRUE(oracle.LoadData(seed).ok());
  oracle.set_reasoning(false);
  oracle.set_compaction_ratio(0);
  for (const auto* script : {&script_a, &script_b}) {
    for (const Mutation& m : *script) {
      ASSERT_TRUE(
          (m.insert ? oracle.Insert(m.triple) : oracle.Remove(m.triple))
              .ok());
    }
  }
  EXPECT_EQ(ToSet(db.store().ExportGraph()),
            ToSet(oracle.store().ExportGraph()));
}

// Readers pinning snapshots while background folds swap generations
// underneath: every query must run against a complete, consistent
// generation (the pin keeps it alive), and an insert-only stream makes
// result counts monotone — any torn read would break that.
TEST(CompactionConcurrency, ReadersPinSnapshotsAcrossGenerationSwaps) {
  const rdf::Graph seed = SeedGraph(120);
  Database db;
  ASSERT_TRUE(db.LoadData(seed).ok());
  db.set_reasoning(false);
  db.set_compaction_ratio(0);

  const std::string star_query =
      "SELECT * WHERE { ?s <" + Iri("p", 0) + "> ?o . ?s <" + Iri("p", 1) +
      "> ?o2 }";
  const std::string count_query =
      "SELECT * WHERE { ?s <" + Iri("p", 2) + "> ?o }";
  const uint64_t baseline =
      db.QueryCount(count_query).ValueOr(0);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> queries_run{0};

  // Readers and the writer coordinate through a test-harness lock (the
  // store's contract is single writer + queries *between* batches); the
  // background fold — freeze, export, rebuild, relay, swap, including
  // the swaps themselves — races every query with no coordination at
  // all, which is exactly what snapshot pinning must survive.
  std::shared_mutex batch_mu;

  // Reader threads: query relentlessly; counts must never regress below
  // the baseline (insert-only stream) and never fail.
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&]() {
      while (!done.load()) {
        {
          std::shared_lock<std::shared_mutex> lk(batch_mu);
          const auto snap = db.snapshot();
          ASSERT_NE(snap, nullptr);
          const auto c = db.QueryCount(count_query);
          ASSERT_TRUE(c.ok()) << c.status().ToString();
          ASSERT_GE(c.value(), baseline) << "count regressed mid-stream";
          const auto s = db.QueryCount(star_query);
          ASSERT_TRUE(s.ok()) << s.status().ToString();
          ++queries_run;
        }
        // Gap between shared holds: glibc rwlocks prefer readers, so a
        // continuous reader pack would starve the writer forever.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  // Writer + compactor on the main thread: insert-only batches with a
  // background fold kicked after each one.
  Rng rng(5150);
  for (int b = 0; b < 20; ++b) {
    rdf::Graph batch;
    for (int i = 0; i < 10; ++i) {
      batch.Add(rdf::Term::Iri(Iri("s", rng.Uniform(40))),
                rdf::Term::Iri(Iri("p", rng.Uniform(3))),
                rdf::Term::Iri(Iri("o", rng.Uniform(40))));
    }
    {
      std::unique_lock<std::shared_mutex> lk(batch_mu);
      ASSERT_TRUE(db.Insert(batch).ok());
    }
    ASSERT_TRUE(db.CompactAsync().ok());
    std::this_thread::yield();
  }
  ASSERT_TRUE(db.WaitForCompaction().ok());
  done.store(true);
  for (auto& t : readers) t.join();

  EXPECT_GT(queries_run.load(), 0u);
  EXPECT_GT(db.store_generation(), 1u) << "no generation ever swapped";
}

// The parallel rebuild under live writes: with >= 2 build threads the
// folds fan their layout/structure constructions out to the shared build
// pool. Auto-compaction stays synchronous here while a dedicated thread
// kicks background folds, so a sync CompactLocked rebuild (on a writer
// thread, under write_mu_) genuinely overlaps a still-running async fold
// worker's rebuild — the multi-producer pool contract, exercised under
// the ThreadSanitizer CI job. The final state must match a serial oracle
// that never compacted and never parallelized.
TEST(CompactionConcurrency, ParallelBuildUnderLiveWritesMatchesSerialOracle) {
  const rdf::Graph seed = SeedGraph(300);
  const std::vector<Mutation> script_a = MutationScript(4046, "sa", 250);
  const std::vector<Mutation> script_b = MutationScript(4047, "sb", 250);

  Database db;
  db.set_build_threads(3);  // parallel rebuilds even on small CI hosts
  ASSERT_TRUE(db.LoadData(seed).ok());
  db.set_reasoning(false);
  // Aggressive synchronous auto-compaction: writer batches fold inline
  // (parallel build on the writer thread) while the compactor thread
  // keeps background folds in flight on the same pool.
  db.set_compaction_ratio(0.05);

  std::atomic<bool> writers_done{false};
  std::atomic<int> async_folds{0};
  std::thread compactor([&]() {
    while (!writers_done.load()) {
      ASSERT_TRUE(db.CompactAsync().ok());
      ++async_folds;
      std::this_thread::yield();
    }
  });

  const auto run_script = [&](const std::vector<Mutation>& script) {
    for (const Mutation& m : script) {
      const Status st =
          m.insert ? db.Insert(m.triple) : db.Remove(m.triple);
      ASSERT_TRUE(st.ok());
    }
  };
  std::thread w1(run_script, std::cref(script_a));
  std::thread w2(run_script, std::cref(script_b));
  w1.join();
  w2.join();
  writers_done.store(true);
  compactor.join();
  ASSERT_TRUE(db.WaitForCompaction().ok());
  ASSERT_TRUE(db.Compact().ok());
  ASSERT_GT(async_folds.load(), 0);
  EXPECT_FALSE(db.store().has_delta());

  Database oracle;  // sequential build, no folds
  ASSERT_TRUE(oracle.LoadData(seed).ok());
  oracle.set_reasoning(false);
  oracle.set_compaction_ratio(0);
  for (const auto* script : {&script_a, &script_b}) {
    for (const Mutation& m : *script) {
      ASSERT_TRUE(
          (m.insert ? oracle.Insert(m.triple) : oracle.Remove(m.triple))
              .ok());
    }
  }
  EXPECT_EQ(ToSet(db.store().ExportGraph()),
            ToSet(oracle.store().ExportGraph()));
}

// Device mode under background folds: checkpoints + truncations happen on
// the worker thread; after the dust settles a reopen must reproduce the
// exact final state.
TEST(CompactionConcurrency, AsyncFoldsCheckpointDurably) {
  const rdf::Graph seed = SeedGraph(150);
  const std::vector<Mutation> script = MutationScript(777, "s", 300);

  io::SimulatedBlockDevice device;
  Database::OpenOptions options;
  options.wal_capacity_blocks = 256;
  std::set<rdf::Triple> expected;
  {
    auto db = Database::Open(&device, options).value();
    db->set_reasoning(false);
    db->set_compaction_ratio(0.2);
    db->set_async_compaction(true);  // auto-folds go to the background
    ASSERT_TRUE(db->LoadData(seed).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    for (const Mutation& m : script) {
      ASSERT_TRUE(
          (m.insert ? db->Insert(m.triple) : db->Remove(m.triple)).ok());
    }
    ASSERT_TRUE(db->WaitForCompaction().ok());
    expected = ToSet(db->store().ExportGraph());
    // Clean shutdown (destructor joins any straggling fold).
  }
  auto recovered = Database::Open(&device, options).value();
  recovered->set_reasoning(false);
  EXPECT_EQ(ToSet(recovered->store().ExportGraph()), expected);
}

}  // namespace
}  // namespace sedge
