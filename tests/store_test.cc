// Tests for the SuccinctEdge store layer: PSO index (Algorithms 2-4),
// datatype store, RDFType store, and the TripleStore facade.

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "ontology/ontology.h"
#include "rdf/rdf_parser.h"
#include "rdf/vocabulary.h"
#include "store/datatype_store.h"
#include "store/pso_index.h"
#include "store/rdftype_store.h"
#include "store/triple_store.h"
#include "util/rng.h"

namespace sedge::store {
namespace {

using TripleVec = std::vector<PsoIndex::Triple>;

// ----------------------------------------------------------------- PsoIndex

TEST(PsoIndex, PaperFigure5Example) {
  // Figure 5(a): p1 connects s1->{o1}, s2->{o1}, s4->{o2};
  // p2 connects s1->{o2, o3}. Ids: s1..s4 = 1..4, o1..o3 = 5..7, p1=1, p2=2.
  const TripleVec triples = {
      {1, 1, 5}, {1, 2, 5}, {1, 4, 6}, {2, 1, 6}, {2, 1, 7}};
  const PsoIndex index = PsoIndex::Build(triples);
  EXPECT_EQ(index.num_triples(), 5u);
  EXPECT_EQ(index.num_pairs(), 4u);
  EXPECT_EQ(index.num_predicates(), 2u);

  // Algorithm 2: triple counts per predicate.
  EXPECT_EQ(index.CountForPredicate(1), 3u);
  EXPECT_EQ(index.CountForPredicate(2), 2u);
  EXPECT_EQ(index.CountForPredicate(99), 0u);
  EXPECT_EQ(index.CountSubjectsForPredicate(1), 3u);
  EXPECT_EQ(index.CountSubjectsForPredicate(2), 1u);

  // Algorithm 3: (s1, p2, ?o) = {o2, o3}.
  std::vector<uint64_t> objects;
  index.ScanSP(2, 1, [&](uint64_t, uint64_t o) {
    objects.push_back(o);
    return true;
  });
  EXPECT_EQ(objects, (std::vector<uint64_t>{6, 7}));

  // Algorithm 4: (?s, p1, o1) = {s1, s2}.
  std::vector<uint64_t> subjects;
  index.ScanPO(1, 5, [&](uint64_t s, uint64_t) {
    subjects.push_back(s);
    return true;
  });
  EXPECT_EQ(subjects, (std::vector<uint64_t>{1, 2}));

  // Membership.
  EXPECT_TRUE(index.Contains(1, 4, 6));
  EXPECT_FALSE(index.Contains(1, 4, 5));
  EXPECT_FALSE(index.Contains(2, 4, 6));
}

struct PsoParam {
  uint64_t n;
  uint64_t num_p, num_s, num_o;
  uint64_t seed;
};

class PsoIndexProperty : public ::testing::TestWithParam<PsoParam> {};

TEST_P(PsoIndexProperty, AllScansMatchNaiveReference) {
  const auto [n, num_p, num_s, num_o, seed] = GetParam();
  Rng rng(seed);
  TripleVec triples;
  std::set<std::tuple<uint64_t, uint64_t, uint64_t>> unique_pso;
  for (uint64_t i = 0; i < n; ++i) {
    PsoIndex::Triple t{rng.Uniform(num_p) + 1, rng.Uniform(num_s) + 1,
                       rng.Uniform(num_o) + 1};
    triples.push_back(t);
    unique_pso.insert({t.p, t.s, t.o});
  }
  const PsoIndex index = PsoIndex::Build(triples);
  ASSERT_EQ(index.num_triples(), unique_pso.size());

  // ScanAll reproduces the sorted unique triple set.
  using Pso = std::tuple<uint64_t, uint64_t, uint64_t>;
  std::vector<Pso> scanned;
  index.ScanAll([&](uint64_t p, uint64_t s, uint64_t o) {
    scanned.push_back({p, s, o});
    return true;
  });
  const std::vector<Pso> expect_all(unique_pso.begin(), unique_pso.end());
  EXPECT_EQ(scanned, expect_all);

  // Per-pattern cross-checks on random probes.
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t p = rng.Uniform(num_p + 2);  // probe absent ids too
    const uint64_t s = rng.Uniform(num_s + 2);
    const uint64_t o = rng.Uniform(num_o + 2);

    std::vector<std::pair<uint64_t, uint64_t>> expect_sp;   // (s,o) for (s,p,?o)
    std::vector<std::pair<uint64_t, uint64_t>> expect_po;   // for (?s,p,o)
    std::vector<std::pair<uint64_t, uint64_t>> expect_p;    // for (?s,p,?o)
    uint64_t count_p = 0;
    for (const auto& [tp, ts, to] : unique_pso) {
      if (tp != p) continue;
      ++count_p;
      expect_p.push_back({ts, to});
      if (ts == s) expect_sp.push_back({ts, to});
      if (to == o) expect_po.push_back({ts, to});
    }
    std::vector<std::pair<uint64_t, uint64_t>> got;
    const auto collect = [&got](uint64_t s2, uint64_t o2) {
      got.push_back({s2, o2});
      return true;
    };
    got.clear();
    index.ScanSP(p, s, collect);
    ASSERT_EQ(got, expect_sp) << "ScanSP p=" << p << " s=" << s;
    got.clear();
    index.ScanPO(p, o, collect);
    std::sort(got.begin(), got.end());
    std::sort(expect_po.begin(), expect_po.end());
    ASSERT_EQ(got, expect_po) << "ScanPO p=" << p << " o=" << o;
    got.clear();
    index.ScanP(p, collect);
    ASSERT_EQ(got, expect_p) << "ScanP p=" << p;
    ASSERT_EQ(index.CountForPredicate(p), count_p);
    ASSERT_EQ(index.Contains(p, s, o), unique_pso.count({p, s, o}) > 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PsoIndexProperty,
    ::testing::Values(PsoParam{0, 3, 5, 5, 1}, PsoParam{1, 1, 1, 1, 2},
                      PsoParam{50, 2, 5, 5, 3}, PsoParam{500, 5, 40, 40, 4},
                      PsoParam{5000, 20, 100, 200, 5},
                      PsoParam{20000, 7, 1000, 1000, 6}));

TEST(PsoIndex, OrderingGuaranteesForMergeJoin) {
  Rng rng(11);
  TripleVec triples;
  for (int i = 0; i < 3000; ++i) {
    triples.push_back({rng.Uniform(4) + 1, rng.Uniform(50), rng.Uniform(50)});
  }
  const PsoIndex index = PsoIndex::Build(triples);
  // Within a predicate run, subjects ascend; per subject, objects ascend.
  for (uint64_t p = 1; p <= 4; ++p) {
    uint64_t last_s = 0;
    uint64_t last_o = 0;
    bool first = true;
    index.ScanP(p, [&](uint64_t s, uint64_t o) {
      if (!first) {
        EXPECT_TRUE(s > last_s || (s == last_s && o > last_o))
            << "order violated at p=" << p;
      }
      first = false;
      last_s = s;
      last_o = o;
      return true;
    });
  }
}

TEST(PsoIndex, PredicateIntervalEnumeration) {
  // Predicates 8..11 present; LiteMat-style interval [9, 11) picks {9, 10}.
  TripleVec triples = {{8, 1, 1}, {9, 1, 1}, {10, 1, 1}, {11, 1, 1}};
  const PsoIndex index = PsoIndex::Build(triples);
  std::vector<uint64_t> ps;
  index.ForEachPredicateIn(9, 11, [&](uint64_t p) { ps.push_back(p); });
  EXPECT_EQ(ps, (std::vector<uint64_t>{9, 10}));
}

TEST(PsoIndex, EarlyTerminationStopsScan) {
  TripleVec triples = {{1, 1, 1}, {1, 1, 2}, {1, 2, 1}, {1, 2, 2}};
  const PsoIndex index = PsoIndex::Build(triples);
  int seen = 0;
  const bool completed = index.ScanP(1, [&](uint64_t, uint64_t) {
    return ++seen < 2;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(seen, 2);
}

// ------------------------------------------------------------ DatatypeStore

TEST(DatatypeStore, StoresAndReconstructsLiterals) {
  std::vector<DatatypeStore::Triple> triples = {
      {1, 10, rdf::Term::Literal("3.5", rdf::kXsdDecimal)},
      {1, 10, rdf::Term::Literal("4.5", rdf::kXsdDecimal)},
      {1, 11, rdf::Term::Literal("3.5", rdf::kXsdDecimal)},  // redundancy OK
      {2, 10, rdf::Term::Literal("hello", "", "en")},
      {2, 12, rdf::Term::Literal("2020-01-01T00:00:00", rdf::kXsdDateTime)},
  };
  const DatatypeStore store = DatatypeStore::Build(triples);
  EXPECT_EQ(store.num_triples(), 5u);

  // (s=10, p=1, ?o) yields both values, reconstructed exactly.
  std::vector<rdf::Term> lits;
  store.ScanSP(1, 10, [&](uint64_t, uint64_t pos) {
    lits.push_back(store.LiteralAt(pos));
    return true;
  });
  ASSERT_EQ(lits.size(), 2u);
  EXPECT_EQ(lits[0], rdf::Term::Literal("3.5", rdf::kXsdDecimal));
  EXPECT_EQ(lits[1], rdf::Term::Literal("4.5", rdf::kXsdDecimal));

  // Numeric cache.
  store.ScanSP(1, 10, [&](uint64_t, uint64_t pos) {
    EXPECT_TRUE(store.NumericAt(pos).has_value());
    return true;
  });
  store.ScanSP(2, 10, [&](uint64_t, uint64_t pos) {
    EXPECT_FALSE(store.NumericAt(pos).has_value());
    EXPECT_EQ(store.LexicalAt(pos), "hello");
    return true;
  });

  // (?s, p=1, "3.5"^^decimal) finds subjects 10 and 11.
  std::vector<uint64_t> subjects;
  store.ScanPO(1, rdf::Term::Literal("3.5", rdf::kXsdDecimal),
               [&](uint64_t s, uint64_t) {
                 subjects.push_back(s);
                 return true;
               });
  EXPECT_EQ(subjects, (std::vector<uint64_t>{10, 11}));

  EXPECT_TRUE(store.Contains(1, 10, rdf::Term::Literal("4.5", rdf::kXsdDecimal)));
  EXPECT_FALSE(store.Contains(1, 10, rdf::Term::Literal("4.5")));  // plain != decimal
  EXPECT_EQ(store.CountForPredicate(1), 3u);
  EXPECT_EQ(store.CountSubjectsForPredicate(2), 2u);
}

TEST(DatatypeStore, RandomizedAgainstNaive) {
  Rng rng(77);
  std::vector<DatatypeStore::Triple> triples;
  std::set<std::tuple<uint64_t, uint64_t, std::string>> naive;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t p = rng.Uniform(5) + 1;
    const uint64_t s = rng.Uniform(50);
    const std::string lex = std::to_string(rng.Uniform(30));
    triples.push_back({p, s, rdf::Term::Literal(lex, rdf::kXsdInteger)});
    naive.insert({p, s, lex});
  }
  const DatatypeStore store = DatatypeStore::Build(triples);
  ASSERT_EQ(store.num_triples(), naive.size());
  uint64_t scanned = 0;
  store.ScanAll([&](uint64_t p, uint64_t s, uint64_t pos) {
    ++scanned;
    EXPECT_TRUE(naive.count({p, s, store.LexicalAt(pos)}) > 0);
    return true;
  });
  EXPECT_EQ(scanned, naive.size());
  // Counts per predicate agree.
  for (uint64_t p = 1; p <= 5; ++p) {
    uint64_t expect = 0;
    for (const auto& [tp, ts, lex] : naive) {
      (void)ts;
      (void)lex;
      if (tp == p) ++expect;
    }
    EXPECT_EQ(store.CountForPredicate(p), expect);
  }
}

// ------------------------------------------------------------- RdfTypeStore

TEST(RdfTypeStore, BidirectionalLookups) {
  RdfTypeStore store;
  store.Add(1, 100);
  store.Add(1, 200);
  store.Add(2, 100);
  store.Add(2, 100);  // duplicate collapses
  store.Finalize();
  EXPECT_EQ(store.num_triples(), 3u);

  ASSERT_NE(store.ConceptsOf(1), nullptr);
  EXPECT_EQ(*store.ConceptsOf(1), (std::vector<uint64_t>{100, 200}));
  ASSERT_NE(store.SubjectsOf(100), nullptr);
  EXPECT_EQ(*store.SubjectsOf(100), (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(store.ConceptsOf(99), nullptr);
  EXPECT_TRUE(store.Contains(1, 200));
  EXPECT_FALSE(store.Contains(2, 200));
}

TEST(RdfTypeStore, IntervalScanServesLiteMatReasoning) {
  RdfTypeStore store;
  // Concepts 16..23 = an 8-wide LiteMat interval; concept 24 outside.
  store.Add(1, 16);
  store.Add(2, 18);
  store.Add(3, 23);
  store.Add(4, 24);
  store.Add(2, 24);
  store.Finalize();
  std::vector<std::pair<uint64_t, uint64_t>> hits;
  store.ForEachSubjectTypedIn(16, 24, [&](uint64_t s, uint64_t c) {
    hits.push_back({s, c});
  });
  EXPECT_EQ(hits, (std::vector<std::pair<uint64_t, uint64_t>>{
                      {1, 16}, {2, 18}, {3, 23}}));
  EXPECT_EQ(store.CountTypedIn(16, 24), 3u);
  EXPECT_EQ(store.CountTypedIn(0, 100), 5u);
}

// -------------------------------------------------------------- TripleStore

TEST(TripleStore, RoutesTriplesToTheRightLayout) {
  const auto onto_graph = rdf::ParseTurtle(R"(
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .
@prefix ex: <http://example.org/> .
ex:Sensor a owl:Class .
ex:PressureSensor rdfs:subClassOf ex:Sensor .
ex:hosts a owl:ObjectProperty .
ex:value a owl:DatatypeProperty .
)");
  ASSERT_TRUE(onto_graph.ok());
  const auto onto = ontology::Ontology::FromGraph(onto_graph.value());
  ASSERT_TRUE(onto.ok());

  const auto data = rdf::ParseTurtle(R"(
@prefix ex: <http://example.org/> .
ex:p1 ex:hosts ex:s1 .
ex:p1 ex:hosts ex:s2 .
ex:s1 a ex:PressureSensor .
ex:s2 a ex:Sensor .
ex:s1 ex:value 3.1 .
ex:s1 ex:value 3.2 .
ex:s2 ex:value 3.1 .
)");
  ASSERT_TRUE(data.ok());

  const auto store_result = TripleStore::Build(onto.value(), data.value());
  ASSERT_TRUE(store_result.ok()) << store_result.status().ToString();
  const TripleStore& store = store_result.value();

  EXPECT_EQ(store.object_store().num_triples(), 2u);
  EXPECT_EQ(store.datatype_store().num_triples(), 3u);
  EXPECT_EQ(store.type_store().num_triples(), 2u);
  EXPECT_EQ(store.num_triples(), 7u);
  EXPECT_EQ(store.skipped_triples(), 0u);

  // Reasoning path: subjects typed within ex:Sensor's interval = s1 and s2.
  const auto interval =
      store.dict().ConceptInterval("http://example.org/Sensor").value();
  std::set<uint64_t> typed;
  store.type_store().ForEachSubjectTypedIn(
      interval.first, interval.second,
      [&](uint64_t s, uint64_t) { typed.insert(s); });
  EXPECT_EQ(typed.size(), 2u);

  // Decode round-trip: instance term back from its id.
  const rdf::Term s1 = rdf::Term::Iri("http://example.org/s1");
  const auto encoded = store.EncodeInstance(s1);
  ASSERT_TRUE(encoded.has_value());
  EXPECT_EQ(store.DecodeTerm(*encoded), s1);

  // Statistics: ex:Sensor aggregates its subclass typings.
  EXPECT_EQ(store.dict().ConceptCountAggregated("http://example.org/Sensor"),
            2u);
  EXPECT_EQ(store.dict().PropertyCountAggregated("http://example.org/value"),
            3u);
}

TEST(TripleStore, SkipsMalformedTriples) {
  ontology::Ontology onto;
  rdf::Graph data;
  // Literal subject, literal rdf:type object: both skipped.
  data.Add(rdf::Term::Literal("x"), rdf::Term::Iri("http://e/p"),
           rdf::Term::Iri("http://e/o"));
  data.Add(rdf::Term::Iri("http://e/s"), rdf::Term::Iri(rdf::kRdfType),
           rdf::Term::Literal("NotAClass"));
  data.Add(rdf::Term::Iri("http://e/s"), rdf::Term::Iri("http://e/p"),
           rdf::Term::Iri("http://e/o"));
  const auto store = TripleStore::Build(onto, data);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value().skipped_triples(), 2u);
  EXPECT_EQ(store.value().num_triples(), 1u);
}

TEST(TripleStore, MixedUsePropertyLandsInBothSpaces) {
  ontology::Ontology onto;
  rdf::Graph data;
  const rdf::Term p = rdf::Term::Iri("http://e/mixed");
  data.Add(rdf::Term::Iri("http://e/a"), p, rdf::Term::Iri("http://e/b"));
  data.Add(rdf::Term::Iri("http://e/a"), p, rdf::Term::Literal("42"));
  const auto store = TripleStore::Build(onto, data);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store.value().object_store().num_triples(), 1u);
  EXPECT_EQ(store.value().datatype_store().num_triples(), 1u);
}

TEST(TripleStore, SizeAccountingIsNonTrivial) {
  ontology::Ontology onto;
  rdf::Graph data;
  for (int i = 0; i < 500; ++i) {
    data.Add(rdf::Term::Iri("http://e/s" + std::to_string(i % 50)),
             rdf::Term::Iri("http://e/p" + std::to_string(i % 5)),
             rdf::Term::Iri("http://e/o" + std::to_string(i % 25)));
  }
  const auto store = TripleStore::Build(onto, data);
  ASSERT_TRUE(store.ok());
  EXPECT_GT(store.value().TriplesSizeInBytes(), 0u);
  EXPECT_GT(store.value().DictionarySizeInBytes(), 0u);
  EXPECT_EQ(store.value().SizeInBytes(),
            store.value().TriplesSizeInBytes() +
                store.value().DictionarySizeInBytes());
}

}  // namespace
}  // namespace sedge::store
