// Device-checkpoint lifecycle tests: the store must come back from
// Database::Open(device) alone — succinct base deserialized from blocks,
// overlay mutations re-applied, acknowledged WAL tail replayed — with no
// application callback anywhere.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "io/block_device.h"
#include "io/checkpoint.h"
#include "io/failing_block_device.h"
#include "rdf/vocabulary.h"
#include "util/rng.h"
#include "workloads/sensor_generator.h"

namespace sedge {
namespace {

std::string Iri(const std::string& kind, uint64_t i) {
  return "http://e.org/" + kind + std::to_string(i);
}

rdf::Graph SeedGraph() {
  rdf::Graph seed;
  const rdf::Term pin = rdf::Term::Iri("http://e.org/pin");
  for (uint64_t p = 0; p < 3; ++p) {
    seed.Add(pin, rdf::Term::Iri(Iri("p", p)), rdf::Term::Iri(Iri("o", 0)));
  }
  for (uint64_t p = 0; p < 2; ++p) {
    seed.Add(pin, rdf::Term::Iri(Iri("dp", p)),
             rdf::Term::Literal(std::to_string(p * 7)));
  }
  for (uint64_t c = 0; c < 3; ++c) {
    seed.Add(pin, rdf::Term::Iri(rdf::kRdfType), rdf::Term::Iri(Iri("C", c)));
  }
  Rng rng(99);
  for (int i = 0; i < 150; ++i) {
    const std::string s = Iri("s", rng.Uniform(20));
    const uint64_t kind = rng.Uniform(4);
    if (kind == 0) {
      seed.Add(rdf::Term::Iri(s), rdf::Term::Iri(rdf::kRdfType),
               rdf::Term::Iri(Iri("C", rng.Uniform(3))));
    } else if (kind == 1) {
      seed.Add(rdf::Term::Iri(s), rdf::Term::Iri(Iri("dp", rng.Uniform(2))),
               rdf::Term::Literal(std::to_string(rng.Uniform(40))));
    } else {
      seed.Add(rdf::Term::Iri(s), rdf::Term::Iri(Iri("p", rng.Uniform(3))),
               rdf::Term::Iri(Iri("o", rng.Uniform(20))));
    }
  }
  return seed;
}

std::set<rdf::Triple> ToSet(const rdf::Graph& graph) {
  return {graph.triples().begin(), graph.triples().end()};
}

std::vector<std::string> Queries() {
  return {
      "SELECT * WHERE { ?s <" + Iri("p", 0) + "> ?o }",
      "SELECT * WHERE { ?s <" + Iri("dp", 1) + "> ?v }",
      "SELECT * WHERE { ?s a <" + Iri("C", 1) + "> }",
      "SELECT * WHERE { ?s <" + Iri("p", 1) + "> ?m . ?m <" + Iri("p", 2) +
          "> ?o }",
  };
}

Database::OpenOptions SmallWal() {
  Database::OpenOptions options;
  options.wal_capacity_blocks = 64;
  return options;
}

void ExpectSameAnswers(const Database& a, const Database& b) {
  for (const std::string& q : Queries()) {
    const auto ra = a.QueryCount(q);
    const auto rb = b.QueryCount(q);
    ASSERT_TRUE(ra.ok()) << q;
    ASSERT_TRUE(rb.ok()) << q;
    EXPECT_EQ(ra.value(), rb.value()) << "disagreement on: " << q;
  }
}

// Checkpoint round trip with a clean (empty) overlay: Open-from-device
// equals the in-memory store, structure by structure.
TEST(Checkpoint, RoundTripsACompactedStore) {
  const rdf::Graph seed = SeedGraph();
  io::SimulatedBlockDevice device;
  auto db = Database::Open(&device, SmallWal()).value();
  db->set_reasoning(false);
  db->set_compaction_ratio(0);
  ASSERT_TRUE(db->LoadData(seed).ok());  // device mode: auto-checkpointed

  auto reopened = Database::Open(&device, SmallWal()).value();
  reopened->set_reasoning(false);
  EXPECT_EQ(reopened->num_triples(), db->num_triples());
  EXPECT_EQ(reopened->store_generation(), db->store_generation());
  EXPECT_EQ(ToSet(reopened->store().ExportGraph()),
            ToSet(db->store().ExportGraph()));
  // Size accounting survives (the succinct structures really were
  // deserialized, not rebuilt from triples with different stats).
  EXPECT_EQ(reopened->store().TriplesSizeInBytes(),
            db->store().TriplesSizeInBytes());
  ExpectSameAnswers(*db, *reopened);
}

// Round trip with a LIVE overlay: the checkpoint carries the base image
// plus the overlay as decoded mutations, and restores both.
TEST(Checkpoint, RoundTripsALiveOverlay) {
  const rdf::Graph seed = SeedGraph();
  io::SimulatedBlockDevice device;
  auto db = Database::Open(&device, SmallWal()).value();
  db->set_reasoning(false);
  db->set_compaction_ratio(0);
  ASSERT_TRUE(db->LoadData(seed).ok());

  // Overlay content across all three layouts, including tombstones and a
  // delta literal.
  ASSERT_TRUE(db->Insert(rdf::Triple{rdf::Term::Iri(Iri("s", 2)),
                                     rdf::Term::Iri(Iri("p", 1)),
                                     rdf::Term::Iri(Iri("o", 19))})
                  .ok());
  ASSERT_TRUE(db->Insert(rdf::Triple{rdf::Term::Iri(Iri("s", 3)),
                                     rdf::Term::Iri(Iri("dp", 0)),
                                     rdf::Term::Literal("12345")})
                  .ok());
  ASSERT_TRUE(db->Insert(rdf::Triple{rdf::Term::Iri(Iri("s", 4)),
                                     rdf::Term::Iri(rdf::kRdfType),
                                     rdf::Term::Iri(Iri("C", 2))})
                  .ok());
  ASSERT_TRUE(db->Remove(seed.triples()[0]).ok());
  ASSERT_TRUE(db->has_data());
  ASSERT_TRUE(db->store().has_delta());

  ASSERT_TRUE(db->Checkpoint().ok());
  const uint64_t delta = db->delta_size();
  ASSERT_GT(delta, 0u);

  auto reopened = Database::Open(&device, SmallWal()).value();
  reopened->set_reasoning(false);
  EXPECT_EQ(reopened->num_triples(), db->num_triples());
  EXPECT_EQ(ToSet(reopened->store().ExportGraph()),
            ToSet(db->store().ExportGraph()));
  ExpectSameAnswers(*db, *reopened);
}

// LoadData in device mode checkpoints the replacement base immediately:
// acknowledged writes after a LoadData must replay onto the *new* base
// after a crash, never onto a stale checkpoint (which would silently
// recover a mixed state).
TEST(Checkpoint, LoadDataIsDurableWithoutExplicitCheckpoint) {
  const rdf::Graph seed = SeedGraph();
  io::SimulatedBlockDevice device;
  std::set<rdf::Triple> expected;
  {
    auto db = Database::Open(&device, SmallWal()).value();
    db->set_reasoning(false);
    db->set_compaction_ratio(0);
    ASSERT_TRUE(db->LoadData(seed).ok());  // no explicit Checkpoint()
    ASSERT_TRUE(db->Insert(rdf::Triple{rdf::Term::Iri(Iri("s", 11)),
                                       rdf::Term::Iri(Iri("p", 0)),
                                       rdf::Term::Iri(Iri("o", 11))})
                    .ok());
    expected = ToSet(db->store().ExportGraph());
  }
  auto recovered = Database::Open(&device, SmallWal()).value();
  recovered->set_reasoning(false);
  EXPECT_EQ(ToSet(recovered->store().ExportGraph()), expected);
}

// WAL replay on top of a checkpoint: writes after the last checkpoint live
// only in the log; Open must replay exactly them.
TEST(Checkpoint, ReplaysWalTailOnTopOfCheckpoint) {
  const rdf::Graph seed = SeedGraph();
  io::SimulatedBlockDevice device;
  std::set<rdf::Triple> expected;
  {
    auto db = Database::Open(&device, SmallWal()).value();
    db->set_reasoning(false);
    db->set_compaction_ratio(0);
    ASSERT_TRUE(db->LoadData(seed).ok());  // auto-checkpointed
    // Post-checkpoint tail: inserts and a remove, never checkpointed.
    ASSERT_TRUE(db->Insert(rdf::Triple{rdf::Term::Iri(Iri("s", 5)),
                                       rdf::Term::Iri(Iri("p", 2)),
                                       rdf::Term::Iri(Iri("o", 7))})
                    .ok());
    ASSERT_TRUE(db->Remove(seed.triples()[2]).ok());
    ASSERT_TRUE(db->Insert(rdf::Triple{rdf::Term::Iri(Iri("s", 6)),
                                       rdf::Term::Iri(Iri("dp", 1)),
                                       rdf::Term::Literal("777")})
                    .ok());
    expected = ToSet(db->store().ExportGraph());
    // "Power cut": drop the database object; only the device survives.
  }
  auto recovered = Database::Open(&device, SmallWal()).value();
  recovered->set_reasoning(false);
  EXPECT_EQ(ToSet(recovered->store().ExportGraph()), expected);
}

// Compaction in device mode = fold + checkpoint + WAL truncation, all
// self-contained. After a compaction, a reopen must see the folded state
// even though the log was truncated.
TEST(Checkpoint, CompactionCheckpointsAndTruncates) {
  const rdf::Graph seed = SeedGraph();
  io::SimulatedBlockDevice device;
  auto db = Database::Open(&device, SmallWal()).value();
  db->set_reasoning(false);
  db->set_compaction_ratio(0);
  ASSERT_TRUE(db->LoadData(seed).ok());  // auto-checkpointed
  const uint64_t seq_before = db->storage()->sequence();
  const uint64_t epoch_before = db->wal()->epoch();

  ASSERT_TRUE(db->Insert(rdf::Triple{rdf::Term::Iri(Iri("s", 7)),
                                     rdf::Term::Iri(Iri("p", 0)),
                                     rdf::Term::Iri(Iri("o", 3))})
                  .ok());
  ASSERT_TRUE(db->Compact().ok());
  EXPECT_FALSE(db->store().has_delta());
  EXPECT_GT(db->storage()->sequence(), seq_before) << "no checkpoint flip";
  EXPECT_GT(db->wal()->epoch(), epoch_before) << "no WAL truncation";
  EXPECT_EQ(db->wal()->ReplayableMutations().ValueOr(99), 0u);

  auto reopened = Database::Open(&device, SmallWal()).value();
  reopened->set_reasoning(false);
  EXPECT_EQ(ToSet(reopened->store().ExportGraph()),
            ToSet(db->store().ExportGraph()));
}

// Repeated reopens are idempotent: re-replaying whatever the log holds
// onto the restored checkpoint must converge (records the checkpoint
// already absorbed re-apply as no-ops).
TEST(Checkpoint, RepeatedReopensAreIdempotent) {
  const rdf::Graph seed = SeedGraph();
  io::SimulatedBlockDevice device;
  std::set<rdf::Triple> expected;
  {
    auto db = Database::Open(&device, SmallWal()).value();
    db->set_reasoning(false);
    db->set_compaction_ratio(0);
    ASSERT_TRUE(db->LoadData(seed).ok());  // auto-checkpointed
    // A logged-but-never-checkpointed tail, replayed by every reopen.
    ASSERT_TRUE(db->Insert(rdf::Triple{rdf::Term::Iri(Iri("s", 8)),
                                       rdf::Term::Iri(Iri("p", 1)),
                                       rdf::Term::Iri(Iri("o", 8))})
                    .ok());
    expected = ToSet(db->store().ExportGraph());
  }
  {
    auto r1 = Database::Open(&device, SmallWal()).value();
    r1->set_reasoning(false);
    r1->set_compaction_ratio(0);  // keep the tail in the log
    EXPECT_EQ(ToSet(r1->store().ExportGraph()), expected);
  }
  auto r2 = Database::Open(&device, SmallWal()).value();
  r2->set_reasoning(false);
  EXPECT_EQ(ToSet(r2->store().ExportGraph()), expected);
}

// A torn superblock flip (power cut during WriteCheckpoint) leaves the
// previous checkpoint authoritative, and WAL replay on top of it restores
// the acknowledged state.
TEST(Checkpoint, TornSuperblockFlipFallsBackToPreviousCheckpoint) {
  const rdf::Graph seed = SeedGraph();
  // Plain pass first to count the device writes a full provisioning +
  // one mutation + checkpoint consumes, so the failing pass can cut
  // during the second checkpoint's superblock flip.
  uint64_t writes_through_first_checkpoint = 0;
  {
    io::SimulatedBlockDevice probe;
    auto db = Database::Open(&probe, SmallWal()).value();
    db->set_reasoning(false);
    db->set_compaction_ratio(0);
    ASSERT_TRUE(db->LoadData(seed).ok());  // auto-checkpointed
    writes_through_first_checkpoint = probe.stats().writes;
  }

  for (uint64_t extra = 1; extra <= 12; ++extra) {
    io::FailingBlockDevice device(writes_through_first_checkpoint + extra,
                                  /*torn_bytes=*/64);
    auto opened = Database::Open(&device, SmallWal());
    ASSERT_TRUE(opened.ok());
    auto db = std::move(opened).value();
    db->set_reasoning(false);
    db->set_compaction_ratio(0);
    ASSERT_TRUE(db->LoadData(seed).ok());  // auto-checkpointed

    // Acknowledged mutation after the checkpoint...
    const rdf::Triple extra_triple{rdf::Term::Iri(Iri("s", 9)),
                                   rdf::Term::Iri(Iri("p", 2)),
                                   rdf::Term::Iri(Iri("o", 9))};
    const Status ins = db->Insert(extra_triple);
    if (!ins.ok()) continue;  // budget landed inside the WAL sync — fine
    const std::set<rdf::Triple> expected = ToSet(db->store().ExportGraph());

    // ...then a second checkpoint that dies somewhere inside (payload or
    // flip). Whatever happens, reopen must reach the acknowledged state.
    (void)db->Checkpoint();
    db.reset();

    auto recovered = Database::Open(&device, SmallWal());
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    recovered.value()->set_reasoning(false);
    EXPECT_EQ(ToSet(recovered.value()->store().ExportGraph()), expected)
        << "cut at +" << extra;
  }
}

// A power cut between first-format block allocation and the first
// superblock write leaves all-zero slots; the device must stay
// formattable (not brick behind "invalid layout" forever).
TEST(Checkpoint, TornFirstFormatStaysFormattable) {
  io::SimulatedBlockDevice device;
  device.AllocateBlock();
  device.AllocateBlock();  // slots allocated, superblock write never landed
  auto db = Database::Open(&device, SmallWal());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(db.value()->Insert(rdf::Triple{rdf::Term::Iri(Iri("s", 0)),
                                             rdf::Term::Iri(Iri("p", 0)),
                                             rdf::Term::Iri(Iri("o", 0))})
                  .ok());
}

// The WAL region filling up forces a checkpoint + truncation on the write
// path instead of an error: a stream of batches far larger than the
// region must keep getting acknowledged, and every acknowledged batch
// must survive a reopen.
TEST(Checkpoint, FullWalRegionForcesCheckpointAndKeepsStreaming) {
  const rdf::Graph seed = SeedGraph();
  io::SimulatedBlockDevice device;
  Database::OpenOptions options;
  options.wal_capacity_blocks = 8;  // tiny: 6 record blocks
  auto db = Database::Open(&device, options).value();
  db->set_reasoning(false);
  db->set_compaction_ratio(0);  // only the full region forces folds
  ASSERT_TRUE(db->LoadData(seed).ok());  // auto-checkpointed
  const uint64_t seq_before = db->storage()->sequence();

  Rng rng(7);
  for (int b = 0; b < 40; ++b) {
    rdf::Graph batch;
    for (int i = 0; i < 20; ++i) {
      batch.Add(rdf::Term::Iri(Iri("s", rng.Uniform(30))),
                rdf::Term::Iri(Iri("p", rng.Uniform(3))),
                rdf::Term::Iri(Iri("o", rng.Uniform(30))));
    }
    ASSERT_TRUE(db->Insert(batch).ok()) << "batch " << b;
  }
  EXPECT_GT(db->storage()->sequence(), seq_before)
      << "the full region never forced a checkpoint";

  auto reopened = Database::Open(&device, options).value();
  reopened->set_reasoning(false);
  EXPECT_EQ(ToSet(reopened->store().ExportGraph()),
            ToSet(db->store().ExportGraph()));
}

// Bootstrap ontology: a fresh device starts from the broadcast ontology;
// after the first checkpoint the device is self-describing and the
// bootstrap copy is no longer consulted.
TEST(Checkpoint, BootstrapOntologySurvivesViaCheckpoint) {
  const ontology::Ontology onto =
      workloads::SensorGraphGenerator::BuildOntology();
  workloads::SensorConfig config;
  config.seed = 4242;

  io::SimulatedBlockDevice device;
  Database::OpenOptions options;
  options.wal_capacity_blocks = 64;
  options.bootstrap_ontology = onto;
  uint64_t expected_triples = 0;
  {
    auto db = Database::Open(&device, options).value();
    ASSERT_TRUE(
        db->Insert(workloads::SensorGraphGenerator::GenerateTopology(config))
            .ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(
        db->Insert(workloads::SensorGraphGenerator::GenerateObservationBatch(
                       config, 0))
            .ok());
    expected_triples = db->num_triples();
  }
  // Reopen WITHOUT the bootstrap ontology: the checkpoint must carry it.
  Database::OpenOptions bare;
  bare.wal_capacity_blocks = 64;
  auto recovered = Database::Open(&device, bare).value();
  EXPECT_EQ(recovered->num_triples(), expected_triples);
  const auto count = recovered->QueryCount(
      "PREFIX sosa: <http://www.w3.org/ns/sosa/>\n"
      "SELECT ?o WHERE { ?o a sosa:Observation }");
  ASSERT_TRUE(count.ok());
  EXPECT_GT(count.value(), 0u);
}

}  // namespace
}  // namespace sedge
