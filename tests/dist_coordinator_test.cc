// Tests for the dist layer: partitioner routing, subject-star BGP
// decomposition with filter pushdown, and the Coordinator against a
// single-database oracle — including cloud-base deduplication, write
// routing, provisional-id reconciliation across shard re-encodes, the
// dist_* metric surface, and the ShardedDatabase facade under the
// concurrent query service.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/sharded_database.h"
#include "dist/coordinator.h"
#include "dist/decomposer.h"
#include "dist/partitioner.h"
#include "rdf/term.h"
#include "rdf/triple.h"
#include "rdf/vocabulary.h"
#include "serve/query_service.h"
#include "sparql/sparql_parser.h"

namespace sedge {
namespace {

using dist::Coordinator;
using dist::CoordinatorOptions;
using dist::Decompose;
using dist::PartitionConfig;
using dist::PartitionPolicy;
using dist::Partitioner;

rdf::Term I(const std::string& iri) { return rdf::Term::Iri(iri); }
rdf::Term L(const std::string& lex) { return rdf::Term::Literal(lex); }

constexpr char kNs[] = "http://ex.org/";

std::string Person(int i) { return kNs + std::string("person/") + std::to_string(i); }
std::string Org(int i) { return kNs + std::string("org/") + std::to_string(i); }

/// Order-independent rendering of a result set (rows sorted, duplicates
/// kept) — row order is not part of either engine's contract.
std::string Canonical(const sparql::QueryResult& result) {
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const auto& row : result.rows) {
    std::string r;
    for (const auto& cell : row) {
      r += cell.has_value() ? cell->ToNTriples() : "UNBOUND";
      r += '\t';
    }
    rows.push_back(std::move(r));
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const std::string& r : rows) {
    out += r;
    out += '\n';
  }
  return out;
}

/// Two star shapes (people, orgs) with cross-subject links: exercises
/// on-shard star joins, coordinator joins, type scans, and numeric
/// filters. 12 people x 5 triples + 3 orgs x 2 triples = 66 triples.
rdf::Graph SmallGraph() {
  rdf::Graph g;
  for (int i = 0; i < 12; ++i) {
    const std::string p = Person(i);
    g.Add(I(p), I(kNs + std::string("name")), L("person" + std::to_string(i)));
    g.Add(I(p), I(kNs + std::string("age")), L(std::to_string(20 + i)));
    g.Add(I(p), I(rdf::kRdfType), I(kNs + std::string("Person")));
    g.Add(I(p), I(kNs + std::string("knows")), I(Person((i + 1) % 12)));
    g.Add(I(p), I(kNs + std::string("worksAt")), I(Org(i % 3)));
  }
  for (int o = 0; o < 3; ++o) {
    g.Add(I(Org(o)), I(kNs + std::string("name")), L("org" + std::to_string(o)));
    g.Add(I(Org(o)), I(rdf::kRdfType), I(kNs + std::string("Org")));
  }
  return g;
}

/// Query mix: single star, two-star coordinator join, type scan, pushed
/// filter, UNION, BIND, DISTINCT, constant subject, cross-group filter.
/// No LIMIT/OFFSET — those are row-order dependent, covered by count
/// checks elsewhere.
std::vector<std::string> QueryMix() {
  return {
      "SELECT ?p ?n ?o WHERE { ?p <http://ex.org/name> ?n . "
      "?p <http://ex.org/worksAt> ?o }",
      "SELECT ?p ?on WHERE { ?p <http://ex.org/worksAt> ?o . "
      "?o <http://ex.org/name> ?on }",
      "SELECT ?p WHERE { ?p a <http://ex.org/Person> }",
      "SELECT ?p ?a WHERE { ?p <http://ex.org/age> ?a . FILTER(?a > 25) }",
      "SELECT ?p ?x WHERE { { ?p <http://ex.org/name> ?x } UNION "
      "{ ?p <http://ex.org/worksAt> ?x } }",
      "SELECT ?p ?b WHERE { ?p <http://ex.org/age> ?a . "
      "BIND(?a + 1 AS ?b) }",
      "SELECT DISTINCT ?o WHERE { ?p <http://ex.org/worksAt> ?o }",
      "SELECT ?x WHERE { <http://ex.org/person/3> <http://ex.org/knows> ?x }",
      "SELECT * WHERE { ?p <http://ex.org/knows> ?x . "
      "?x <http://ex.org/worksAt> ?o }",
      "SELECT ?p ?q WHERE { ?p <http://ex.org/age> ?a . "
      "?q <http://ex.org/age> ?b . FILTER(?a < ?b) }",
  };
}

void ExpectMatchesOracle(const Coordinator& coord, const Database& oracle,
                         const std::vector<std::string>& queries,
                         const std::string& context) {
  for (const std::string& q : queries) {
    const auto want = oracle.Query(q);
    const auto got = coord.Query(q);
    ASSERT_TRUE(want.ok()) << context << " oracle failed: " << q;
    ASSERT_TRUE(got.ok()) << context << " coordinator failed: " << q
                          << " — " << got.status().message();
    EXPECT_EQ(Canonical(got.value()), Canonical(want.value()))
        << context << " query: " << q;
    const auto count = coord.QueryCount(q);
    ASSERT_TRUE(count.ok()) << context << " count failed: " << q;
    EXPECT_EQ(count.value(), want.value().rows.size())
        << context << " count query: " << q;
  }
}

// ------------------------------------------------------------- partitioner

TEST(Partitioner, SubjectHashColocatesAllTriplesOfASubject) {
  const Partitioner part(PartitionConfig{PartitionPolicy::kSubjectHash, 4,
                                         /*cloud_base=*/false});
  EXPECT_EQ(part.num_shards(), 4);
  EXPECT_EQ(part.cloud_shard(), -1);
  EXPECT_TRUE(part.colocates_subjects());
  std::set<int> seen;
  const rdf::Graph graph = SmallGraph();
  for (const rdf::Triple& t : graph.triples()) {
    const int shard = part.ShardOf(t);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    EXPECT_EQ(shard, part.ShardOfSubject(t.subject));
    seen.insert(shard);
  }
  // 15 distinct subjects over 4 shards: FNV spread should hit > 1 shard.
  EXPECT_GT(seen.size(), 1u);
}

TEST(Partitioner, SitePolicyGroupsByIriAuthority) {
  EXPECT_EQ(Partitioner::SiteOf("http://www.Department3.University0.edu/Grad44"),
            "www.Department3.University0.edu");
  EXPECT_EQ(Partitioner::SiteOf("https://edge-7.example.net"),
            "edge-7.example.net");
  // No authority: the full string is the site (still deterministic).
  EXPECT_EQ(Partitioner::SiteOf("urn:uuid:1234"), "urn:uuid:1234");

  const Partitioner part(
      PartitionConfig{PartitionPolicy::kSite, 3, /*cloud_base=*/false});
  const int site_a = part.ShardOfSubject(I("http://a.example.org/s/1"));
  EXPECT_EQ(site_a, part.ShardOfSubject(I("http://a.example.org/s/2")));
  EXPECT_EQ(site_a, part.ShardOfSubject(I("http://a.example.org/other")));
  // Different hosts hash independently: a handful of sites must spread
  // over more than one shard (any single pair may of course collide).
  std::set<int> spread;
  for (const char* host : {"a", "b", "c", "d", "e", "f", "g", "h"}) {
    spread.insert(part.ShardOfSubject(
        I("http://" + std::string(host) + ".example.org/s/1")));
  }
  EXPECT_GT(spread.size(), 1u);
}

TEST(Partitioner, CloudBaseAddsOneShardAtTheEnd) {
  const Partitioner part(
      PartitionConfig{PartitionPolicy::kSubjectHash, 2, /*cloud_base=*/true});
  EXPECT_EQ(part.num_edge_shards(), 2);
  EXPECT_EQ(part.num_shards(), 3);
  EXPECT_EQ(part.cloud_shard(), 2);
  // Writes still route to edge shards only.
  const rdf::Graph graph = SmallGraph();
  for (const rdf::Triple& t : graph.triples()) {
    EXPECT_LT(part.ShardOf(t), 2);
  }
}

// -------------------------------------------------------------- decomposer

sparql::GroupPattern ParseWhere(const std::string& text) {
  auto q = sparql::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << text;
  return std::move(q.value().where);
}

TEST(Decomposer, GroupsBySubjectStar) {
  auto dec = Decompose(
      ParseWhere("SELECT * WHERE { ?p <http://ex.org/name> ?n . "
                 "?p <http://ex.org/worksAt> ?o . ?p a <http://ex.org/Person> . "
                 "?o <http://ex.org/name> ?on }"),
      /*colocate_subjects=*/true);
  ASSERT_EQ(dec.groups.size(), 2u);
  EXPECT_EQ(dec.patterns_total, 4u);
  // (3 - 1) joins in the ?p star + (1 - 1) in the ?o star.
  EXPECT_EQ(dec.pushed_join_edges, 2u);
  EXPECT_EQ(dec.groups[0].patterns, 3u);
  EXPECT_EQ(dec.groups[0].type_patterns, 1u);
  EXPECT_EQ(dec.groups[1].patterns, 1u);
  // The ?p star binds ?p ?n ?o in first-seen order; subqueries project
  // every group variable.
  ASSERT_EQ(dec.groups[0].vars.size(), 3u);
  EXPECT_EQ(dec.groups[0].vars[0].name, "p");
  EXPECT_EQ(dec.groups[0].query.select.size(), dec.groups[0].vars.size());
  EXPECT_FALSE(dec.groups[0].query.distinct);
  // Residual carries no triples and nothing else here.
  EXPECT_TRUE(dec.residual.triples.empty());
  EXPECT_TRUE(dec.residual.filters.empty());
  EXPECT_TRUE(dec.residual.unions.empty());
  EXPECT_TRUE(dec.residual.binds.empty());
}

TEST(Decomposer, PushesRowLocalFiltersOnly) {
  // ?a is produced only by the ?p star -> pushed; the ?a < ?b filter
  // spans two groups -> residual; the BIND and its dependent filter stay
  // at the coordinator.
  auto dec = Decompose(
      ParseWhere("SELECT * WHERE { ?p <http://ex.org/age> ?a . "
                 "?q <http://ex.org/age> ?b . FILTER(?a > 25) . "
                 "FILTER(?a < ?b) . BIND(?a + 1 AS ?c) . FILTER(?c > 0) }"),
      /*colocate_subjects=*/true);
  ASSERT_EQ(dec.groups.size(), 2u);
  size_t pushed = 0;
  for (const auto& g : dec.groups) pushed += g.pushed_filters;
  EXPECT_EQ(pushed, 1u);
  EXPECT_EQ(dec.residual.filters.size(), 2u);
  EXPECT_EQ(dec.residual.binds.size(), 1u);
}

TEST(Decomposer, ConstantSubjectsFormTheirOwnStars) {
  auto dec = Decompose(
      ParseWhere("SELECT * WHERE { <http://ex.org/person/3> "
                 "<http://ex.org/knows> ?x . ?x <http://ex.org/name> ?n }"),
      /*colocate_subjects=*/true);
  EXPECT_EQ(dec.groups.size(), 2u);
  EXPECT_EQ(dec.pushed_join_edges, 0u);
}

TEST(Decomposer, WithoutColocationEveryPatternIsItsOwnGroup) {
  auto dec = Decompose(
      ParseWhere("SELECT * WHERE { ?p <http://ex.org/name> ?n . "
                 "?p <http://ex.org/worksAt> ?o }"),
      /*colocate_subjects=*/false);
  EXPECT_EQ(dec.groups.size(), 2u);
  EXPECT_EQ(dec.pushed_join_edges, 0u);
}

// ------------------------------------------------------------- coordinator

CoordinatorOptions MakeOptions(PartitionPolicy policy, int shards,
                               bool cloud_base) {
  CoordinatorOptions opts;
  opts.partition.policy = policy;
  opts.partition.shards = shards;
  opts.partition.cloud_base = cloud_base;
  return opts;
}

TEST(Coordinator, MatchesOracleAcrossShardCountsAndPolicies) {
  const rdf::Graph graph = SmallGraph();
  Database oracle;
  oracle.set_reasoning(false);
  ASSERT_TRUE(oracle.LoadData(graph).ok());

  struct Cell {
    PartitionPolicy policy;
    int shards;
    bool cloud_base;
  };
  const std::vector<Cell> cells = {
      {PartitionPolicy::kSubjectHash, 1, false},
      {PartitionPolicy::kSubjectHash, 2, false},
      {PartitionPolicy::kSubjectHash, 4, false},
      {PartitionPolicy::kSite, 3, false},
      {PartitionPolicy::kSubjectHash, 2, true},
  };
  for (const Cell& cell : cells) {
    Coordinator coord(
        MakeOptions(cell.policy, cell.shards, cell.cloud_base));
    coord.set_reasoning(false);
    ASSERT_TRUE(coord.LoadData(graph).ok());
    EXPECT_EQ(coord.num_triples(), oracle.num_triples());
    const std::string context =
        "shards=" + std::to_string(cell.shards) +
        (cell.cloud_base ? "+cloud" : "") +
        (cell.policy == PartitionPolicy::kSite ? " site" : " hash");
    ExpectMatchesOracle(coord, oracle, QueryMix(), context);
  }
}

TEST(Coordinator, RoutedWritesAndRemovalsMatchOracle) {
  const rdf::Graph base = SmallGraph();
  Database oracle;
  oracle.set_reasoning(false);
  ASSERT_TRUE(oracle.LoadData(base).ok());
  Coordinator coord(
      MakeOptions(PartitionPolicy::kSubjectHash, 3, /*cloud_base=*/false));
  coord.set_reasoning(false);
  ASSERT_TRUE(coord.LoadData(base).ok());

  // Insert a batch spanning several subjects (old and brand-new).
  rdf::Graph batch;
  for (int i = 0; i < 6; ++i) {
    batch.Add(I(Person(i)), I(kNs + std::string("email")),
              L("p" + std::to_string(i) + "@ex.org"));
    batch.Add(I(Person(100 + i)), I(kNs + std::string("name")),
              L("new" + std::to_string(i)));
  }
  ASSERT_TRUE(oracle.Insert(batch).ok());
  Database::InsertReport report;
  ASSERT_TRUE(coord.Insert(batch, &report).ok());
  EXPECT_EQ(report.applied + report.deferred_provisional + report.rejected,
            batch.size());
  EXPECT_EQ(coord.num_triples(), oracle.num_triples());

  // Remove a slice: some base triples, some just-inserted ones.
  rdf::Graph gone;
  gone.Add(I(Person(0)), I(kNs + std::string("email")), L("p0@ex.org"));
  gone.Add(I(Person(1)), I(kNs + std::string("worksAt")), I(Org(1)));
  gone.Add(I(Person(101)), I(kNs + std::string("name")), L("new1"));
  ASSERT_TRUE(oracle.Remove(gone).ok());
  ASSERT_TRUE(coord.Remove(gone).ok());
  EXPECT_EQ(coord.num_triples(), oracle.num_triples());
  ExpectMatchesOracle(coord, oracle, QueryMix(), "after writes");

  // Per-shard triple counts sum to the whole.
  uint64_t sum = 0;
  for (int s = 0; s < coord.num_shards(); ++s) {
    sum += coord.shard(s).num_triples();
  }
  EXPECT_EQ(sum, coord.num_triples());
}

TEST(Coordinator, CloudBaseDuplicatesAreDeduplicated) {
  const rdf::Graph base = SmallGraph();
  Database oracle;
  oracle.set_reasoning(false);
  ASSERT_TRUE(oracle.LoadData(base).ok());
  Coordinator coord(
      MakeOptions(PartitionPolicy::kSubjectHash, 2, /*cloud_base=*/true));
  coord.set_reasoning(false);
  ASSERT_TRUE(coord.LoadData(base).ok());
  // The cloud shard holds the whole base; edge shards start empty.
  EXPECT_EQ(coord.shard(2).num_triples(), base.size());
  EXPECT_EQ(coord.shard(0).num_triples() + coord.shard(1).num_triples(), 0u);

  // Re-insert base triples (now living on BOTH an edge shard and the
  // cloud) plus fresh ones; the oracle's set semantics must survive the
  // cross-shard union.
  rdf::Graph batch;
  for (int i = 0; i < 4; ++i) {
    batch.Add(I(Person(i)), I(kNs + std::string("worksAt")), I(Org(i % 3)));
    batch.Add(I(Person(200 + i)), I(kNs + std::string("worksAt")), I(Org(0)));
  }
  ASSERT_TRUE(oracle.Insert(batch).ok());
  ASSERT_TRUE(coord.Insert(batch).ok());
  ExpectMatchesOracle(coord, oracle, QueryMix(), "cloud dedupe");
  EXPECT_GT(
      coord.metrics().FindCounter("dist_union_dedup_rows_total")->value(), 0u);

  // Removal reaches both replicas.
  rdf::Graph gone;
  gone.Add(I(Person(0)), I(kNs + std::string("worksAt")), I(Org(0)));
  ASSERT_TRUE(oracle.Remove(gone).ok());
  ASSERT_TRUE(coord.Remove(gone).ok());
  ExpectMatchesOracle(coord, oracle, QueryMix(), "cloud remove");
}

TEST(Coordinator, ProvisionalTermsReconcileAcrossShardReencode) {
  const rdf::Graph base = SmallGraph();
  Coordinator coord(
      MakeOptions(PartitionPolicy::kSubjectHash, 3, /*cloud_base=*/false));
  coord.set_reasoning(false);
  coord.set_compaction_ratio(0.0);  // never auto-fold; we fold by hand
  ASSERT_TRUE(coord.LoadData(base).ok());

  // Brand-new vocabulary: unknown predicate and class -> provisional ids
  // on whichever shards the subjects land.
  rdf::Graph novel;
  for (int i = 0; i < 8; ++i) {
    novel.Add(I(Person(i)), I(kNs + std::string("badge")),
              L("b" + std::to_string(i)));
    novel.Add(I(Person(i)), I(rdf::kRdfType), I(kNs + std::string("Staff")));
  }
  ASSERT_TRUE(coord.Insert(novel).ok());

  const std::string q1 =
      "SELECT ?p ?b WHERE { ?p <http://ex.org/badge> ?b }";
  const std::string q2 = "SELECT ?p WHERE { ?p a <http://ex.org/Staff> }";
  const auto before1 = coord.Query(q1);
  const auto before2 = coord.Query(q2);
  ASSERT_TRUE(before1.ok());
  ASSERT_TRUE(before2.ok());
  EXPECT_EQ(before1.value().rows.size(), 8u);

  // Re-encode shard by shard (async folds admit the provisional terms
  // into the succinct base and renumber local ids); the term map must
  // refresh its per-shard caches and keep decoding identically.
  for (int s = 0; s < coord.num_shards(); ++s) {
    ASSERT_TRUE(coord.CompactShardAsync(s).ok());
  }
  ASSERT_TRUE(coord.WaitForCompactions().ok());

  const auto after1 = coord.Query(q1);
  const auto after2 = coord.Query(q2);
  ASSERT_TRUE(after1.ok());
  ASSERT_TRUE(after2.ok());
  EXPECT_EQ(Canonical(after1.value()), Canonical(before1.value()));
  EXPECT_EQ(Canonical(after2.value()), Canonical(before2.value()));
  EXPECT_GT(coord.term_map().refreshes(), 0u);

  // A second synchronous fold round-trips too.
  ASSERT_TRUE(coord.Compact().ok());
  const auto again = coord.Query(q1);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(Canonical(again.value()), Canonical(before1.value()));
}

TEST(Coordinator, DistMetricsExposePushdownAndFanout) {
  Coordinator coord(
      MakeOptions(PartitionPolicy::kSubjectHash, 2, /*cloud_base=*/false));
  coord.set_reasoning(false);
  ASSERT_TRUE(coord.LoadData(SmallGraph()).ok());

  // A two-star query: one coordinator join, two pushed join edges in the
  // wider star.
  const std::string q =
      "SELECT ?p ?on WHERE { ?p <http://ex.org/name> ?n . "
      "?p <http://ex.org/worksAt> ?o . ?o <http://ex.org/name> ?on }";
  ASSERT_TRUE(coord.Query(q).ok());

  const auto& m = coord.metrics();
  EXPECT_EQ(m.FindCounter("dist_queries_total")->value(), 1u);
  // 2 groups x 2 shards.
  EXPECT_EQ(m.FindCounter("dist_subqueries_total")->value(), 4u);
  EXPECT_EQ(m.FindCounter("dist_patterns_total")->value(), 3u);
  EXPECT_EQ(m.FindCounter("dist_pushed_join_edges_total")->value(), 1u);
  EXPECT_EQ(m.FindCounter("dist_join_hash_total")->value() +
                m.FindCounter("dist_join_merge_total")->value(),
            1u);
  EXPECT_GT(m.FindGauge("dist_pushdown_ratio")->value(), 0.0);
  EXPECT_EQ(m.FindGauge("dist_shards")->value(), 2.0);
  EXPECT_GT(m.FindGauge("dist_term_map_terms")->value(), 0.0);
  EXPECT_EQ(m.FindHistogram("dist_fanout_shards")->count(), 1u);
  EXPECT_EQ(m.FindHistogram("dist_query_seconds")->count(), 1u);
  // Routed-write counters and per-shard gauges.
  ASSERT_TRUE(coord
                  .Insert(rdf::Triple{I(Person(0)),
                                      I(kNs + std::string("email")),
                                      L("x@ex.org")})
                  .ok());
  EXPECT_EQ(m.FindCounter("dist_inserts_routed_total")->value(), 1u);
  double shard_sum = 0.0;
  for (int s = 0; s < coord.num_shards(); ++s) {
    shard_sum += m.FindGauge("dist_shard_triples",
                             "shard=\"" + std::to_string(s) + "\"")
                     ->value();
  }
  EXPECT_EQ(shard_sum, static_cast<double>(coord.num_triples()));
}

TEST(Coordinator, EmptyCoordinatorRejectsQueries) {
  Coordinator coord(
      MakeOptions(PartitionPolicy::kSubjectHash, 2, /*cloud_base=*/false));
  EXPECT_FALSE(coord.has_data());
  EXPECT_FALSE(coord.Query("SELECT ?s WHERE { ?s ?p ?o }").ok());
}

// -------------------------------------------------- facade + query service

TEST(ShardedDatabase, FacadeServesThroughTheQueryService) {
  ShardedDatabase db(3);
  db.set_reasoning(false);
  ASSERT_TRUE(db.LoadData(SmallGraph()).ok());
  const uint64_t v0 = db.content_version();

  serve::ServeOptions sopts;
  sopts.readers = 2;
  serve::QueryService service(&db, sopts);
  const std::string q =
      "SELECT ?p ?o WHERE { ?p <http://ex.org/worksAt> ?o }";

  auto first = service.Execute(q);
  ASSERT_TRUE(first.status.ok()) << first.status.message();
  EXPECT_EQ(first.rows, 12u);
  EXPECT_FALSE(first.result_cache_hit);
  EXPECT_EQ(first.generation, v0);

  // Same content version -> result-cache hit with identical rows.
  auto repeat = service.Execute(q);
  ASSERT_TRUE(repeat.status.ok());
  EXPECT_TRUE(repeat.result_cache_hit);
  EXPECT_EQ(Canonical(repeat.result), Canonical(first.result));

  // A routed write bumps the version and invalidates.
  ASSERT_TRUE(db.Insert(rdf::Triple{I(Person(50)),
                                    I(kNs + std::string("worksAt")),
                                    I(Org(0))})
                  .ok());
  EXPECT_GT(db.content_version(), v0);
  auto after = service.Execute(q);
  ASSERT_TRUE(after.status.ok());
  EXPECT_FALSE(after.result_cache_hit);
  EXPECT_EQ(after.rows, 13u);

  service.Shutdown();
}

}  // namespace
}  // namespace sedge
