// Tests for the LUBM-like generator, the sensor-graph generator, and the
// query catalog, including end-to-end runs through sedge::Database.

#include <set>

#include <gtest/gtest.h>

#include "core/database.h"
#include "workloads/lubm_generator.h"
#include "workloads/lubm_queries.h"
#include "workloads/sensor_generator.h"

namespace sedge::workloads {
namespace {

TEST(LubmGenerator, SizeIsDeterministicAndInLubm1Range) {
  LubmConfig config;
  const rdf::Graph g1 = LubmGenerator::Generate(config);
  const rdf::Graph g2 = LubmGenerator::Generate(config);
  ASSERT_EQ(g1.size(), g2.size());
  EXPECT_EQ(g1.triples()[123], g2.triples()[123]);
  // LUBM(1) is "over 103.000 triples" (paper Section 7.2).
  EXPECT_GT(g1.size(), 80000u);
  EXPECT_LT(g1.size(), 140000u);
}

TEST(LubmGenerator, DifferentSeedsDiffer) {
  LubmConfig a;
  LubmConfig b;
  b.seed = 1234;
  EXPECT_NE(LubmGenerator::Generate(a).size(),
            LubmGenerator::Generate(b).size());
}

TEST(LubmGenerator, SmallConfigScalesDown) {
  LubmConfig config;
  config.departments_per_university = 2;
  const rdf::Graph g = LubmGenerator::Generate(config);
  EXPECT_GT(g.size(), 5000u);
  EXPECT_LT(g.size(), 20000u);
}

class LubmEndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    LubmConfig config;
    config.departments_per_university = 3;  // ~15K triples: fast tests
    graph_ = new rdf::Graph(LubmGenerator::Generate(config));
    db_ = new Database();
    db_->LoadOntology(LubmGenerator::BuildOntology());
    ASSERT_TRUE(db_->LoadData(*graph_).ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete graph_;
    db_ = nullptr;
    graph_ = nullptr;
  }

  static rdf::Graph* graph_;
  static Database* db_;
};

rdf::Graph* LubmEndToEnd::graph_ = nullptr;
Database* LubmEndToEnd::db_ = nullptr;

TEST_F(LubmEndToEnd, SingleTpQueriesHitNearTargets) {
  const auto specs = LubmQueries::SingleSp(*graph_, {4, 66, 129, 257, 513});
  ASSERT_EQ(specs.size(), 5u);
  for (const auto& spec : specs) {
    const auto count = db_->QueryCount(spec.sparql);
    ASSERT_TRUE(count.ok()) << spec.id << ": " << count.status().ToString();
    EXPECT_GT(count.value(), 0u) << spec.id;
    // Within 3x of the paper's target (the graph is a third of LUBM1 here).
    EXPECT_LT(count.value(), spec.target * 4 + 20) << spec.id;
  }
}

TEST_F(LubmEndToEnd, ReverseTpQueriesWork) {
  const auto specs = LubmQueries::SinglePo(*graph_, {5, 17, 135, 283, 521});
  ASSERT_EQ(specs.size(), 5u);
  for (const auto& spec : specs) {
    const auto count = db_->QueryCount(spec.sparql);
    ASSERT_TRUE(count.ok()) << spec.id << ": " << count.status().ToString();
    EXPECT_GT(count.value(), 0u) << spec.id;
  }
}

TEST_F(LubmEndToEnd, PredicateScansHaveAscendingSizes) {
  const auto specs = LubmQueries::SingleP();
  ASSERT_EQ(specs.size(), 5u);
  uint64_t works_for = 0;
  uint64_t name = 0;
  for (const auto& spec : specs) {
    const auto count = db_->QueryCount(spec.sparql);
    ASSERT_TRUE(count.ok()) << spec.id;
    EXPECT_GT(count.value(), 0u) << spec.id;
    if (spec.id == "S11") works_for = count.value();
    if (spec.id == "S15") name = count.value();
  }
  // name covers every named entity: by far the largest (Figure 12 shape).
  EXPECT_GT(name, works_for * 5);
}

TEST_F(LubmEndToEnd, MultiTpQueriesReturnRows) {
  db_->set_reasoning(false);  // M-queries are inference-free
  for (const auto& spec : LubmQueries::Multi(*graph_)) {
    const auto count = db_->QueryCount(spec.sparql);
    ASSERT_TRUE(count.ok()) << spec.id << ": " << count.status().ToString();
    EXPECT_GT(count.value(), 0u) << spec.id;
  }
  db_->set_reasoning(true);
}

TEST_F(LubmEndToEnd, ReasoningQueriesDeriveExtraTuples) {
  db_->set_reasoning(false);
  const auto m = LubmQueries::Multi(*graph_);
  const uint64_t m4 = db_->QueryCount(m[3].sparql).ValueOr(0);
  db_->set_reasoning(true);
  const auto r = LubmQueries::Reasoning(*graph_);
  for (const auto& spec : r) {
    const auto count = db_->QueryCount(spec.sparql);
    ASSERT_TRUE(count.ok()) << spec.id << ": " << count.status().ToString();
    EXPECT_GT(count.value(), 0u) << spec.id;
  }
  // R5 is M4 plus memberOf reasoning: strictly more solutions.
  const uint64_t r5 = db_->QueryCount(r[4].sparql).ValueOr(0);
  EXPECT_GT(r5, m4);
}

TEST_F(LubmEndToEnd, ReasoningMatchesManualUnionSemantics) {
  // ?x a Student (reasoning) == Student ∪ UndergraduateStudent ∪
  // GraduateStudent (explicit union, no reasoning).
  const char* kReasoned =
      "PREFIX lubm: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
      "SELECT ?x WHERE { ?x a lubm:Student }";
  const char* kUnion =
      "PREFIX lubm: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
      "SELECT ?x WHERE { { ?x a lubm:Student } UNION "
      "{ ?x a lubm:UndergraduateStudent } UNION "
      "{ ?x a lubm:GraduateStudent } }";
  db_->set_reasoning(true);
  const uint64_t reasoned = db_->QueryCount(kReasoned).ValueOr(0);
  db_->set_reasoning(false);
  const uint64_t unioned = db_->QueryCount(kUnion).ValueOr(0);
  db_->set_reasoning(true);
  EXPECT_GT(reasoned, 0u);
  EXPECT_EQ(reasoned, unioned);
}

TEST_F(LubmEndToEnd, AllCatalogQueriesParseAndRun) {
  for (const auto& spec : LubmQueries::All(*graph_)) {
    db_->set_reasoning(spec.reasoning);
    const auto count = db_->QueryCount(spec.sparql);
    ASSERT_TRUE(count.ok()) << spec.id << ": " << count.status().ToString();
  }
  db_->set_reasoning(true);
}

// -------------------------------------------------------- sensor generator

TEST(SensorGenerator, HitsTripleTargets) {
  const rdf::Graph g250 = SensorGraphGenerator::GenerateWithTripleTarget(250);
  const rdf::Graph g500 = SensorGraphGenerator::GenerateWithTripleTarget(500);
  EXPECT_NEAR(static_cast<double>(g250.size()), 250.0, 30.0);
  EXPECT_NEAR(static_cast<double>(g500.size()), 500.0, 30.0);
}

TEST(SensorGenerator, AnomalyQueryFindsInjectedAnomalies) {
  Database db;
  db.LoadOntology(SensorGraphGenerator::BuildOntology());
  SensorConfig config;
  config.observations_per_sensor = 40;
  config.anomaly_rate = 0.3;
  ASSERT_TRUE(db.LoadData(SensorGraphGenerator::Generate(config)).ok());
  const auto hits =
      db.QueryCount(SensorGraphGenerator::PressureAnomalyQuery());
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  EXPECT_GT(hits.value(), 0u);

  // With no anomalies, the detector stays silent.
  config.anomaly_rate = 0.0;
  ASSERT_TRUE(db.LoadData(SensorGraphGenerator::Generate(config)).ok());
  const auto clean =
      db.QueryCount(SensorGraphGenerator::PressureAnomalyQuery());
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean.value(), 0u);
}

TEST(SensorGenerator, HeterogeneousStationsRequireReasoning) {
  Database db;
  db.LoadOntology(SensorGraphGenerator::BuildOntology());
  SensorConfig config;
  config.observations_per_sensor = 30;
  config.anomaly_rate = 0.5;
  ASSERT_TRUE(db.LoadData(SensorGraphGenerator::Generate(config)).ok());
  // The unit classes differ per station profile; without reasoning the
  // qudt:PressureUnit pattern matches no unit at all.
  db.set_reasoning(false);
  const auto without =
      db.QueryCount(SensorGraphGenerator::PressureAnomalyQuery());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(without.value(), 0u);
  db.set_reasoning(true);
  const auto with =
      db.QueryCount(SensorGraphGenerator::PressureAnomalyQuery());
  ASSERT_TRUE(with.ok());
  EXPECT_GT(with.value(), 0u);
}

}  // namespace
}  // namespace sedge::workloads
