// WAL unit tests: record framing round-trips, group-commit batching
// (log-level syncs vs device-level block writes), truncation-at-compaction
// semantics, reopen tail scanning, and failure propagation. Crash
// injection lives in wal_recovery_test.cc.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/failing_block_device.h"
#include "io/wal.h"

namespace sedge::io {
namespace {

rdf::Triple ObjTriple(const std::string& s, const std::string& p,
                      const std::string& o) {
  return {rdf::Term::Iri(s), rdf::Term::Iri(p), rdf::Term::Iri(o)};
}

/// Replays into a vector for easy assertions.
std::vector<WalReplayRecord> ReplayAll(const WriteAheadLog& wal) {
  std::vector<WalReplayRecord> out;
  const Status st = wal.Replay([&](const WalReplayRecord& r) {
    out.push_back(r);
    return Status::OK();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

TEST(WalFraming, RoundTripsEveryTermShape) {
  SimulatedBlockDevice device;
  WriteAheadLog wal(&device);
  ASSERT_TRUE(wal.Open().ok());

  const std::vector<rdf::Triple> triples = {
      ObjTriple("http://e.org/s0", "http://e.org/p", "http://e.org/o0"),
      {rdf::Term::Blank("b0"), rdf::Term::Iri("http://e.org/p"),
       rdf::Term::Blank("b1")},
      {rdf::Term::Iri("http://e.org/s1"), rdf::Term::Iri("http://e.org/dp"),
       rdf::Term::Literal("12.5",
                          "http://www.w3.org/2001/XMLSchema#decimal")},
      {rdf::Term::Iri("http://e.org/s2"), rdf::Term::Iri("http://e.org/dp"),
       rdf::Term::Literal("gr\xC3\xBC\xC3\x9F dich", "", "de")},
      {rdf::Term::Iri("http://e.org/s3"), rdf::Term::Iri("http://e.org/dp"),
       rdf::Term::Literal("")},  // empty lexical form
  };
  for (size_t i = 0; i < triples.size(); ++i) {
    const Status st = (i % 2 == 0) ? wal.AppendInsert(triples[i])
                                   : wal.AppendRemove(triples[i]);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  ASSERT_TRUE(wal.Sync().ok());

  const auto records = ReplayAll(wal);
  ASSERT_EQ(records.size(), triples.size());
  for (size_t i = 0; i < triples.size(); ++i) {
    EXPECT_EQ(records[i].type, i % 2 == 0 ? WalRecordType::kInsert
                                          : WalRecordType::kRemove);
    EXPECT_EQ(records[i].triple, triples[i]) << "record " << i;
  }
}

TEST(WalFraming, RecordsSpanBlockBoundaries) {
  SimulatedBlockDevice device;
  WriteAheadLog wal(&device);
  ASSERT_TRUE(wal.Open().ok());

  // ~1.5 KiB literals: every third record straddles a 4 KiB block edge.
  std::vector<rdf::Triple> triples;
  for (int i = 0; i < 24; ++i) {
    triples.push_back({rdf::Term::Iri("http://e.org/s" + std::to_string(i)),
                       rdf::Term::Iri("http://e.org/dp"),
                       rdf::Term::Literal(std::string(1500, 'a' + i % 26))});
    ASSERT_TRUE(wal.AppendInsert(triples.back()).ok());
  }
  ASSERT_TRUE(wal.Sync().ok());
  ASSERT_GT(device.num_blocks(), 2u) << "log should cover several blocks";

  const auto records = ReplayAll(wal);
  ASSERT_EQ(records.size(), triples.size());
  for (size_t i = 0; i < triples.size(); ++i) {
    EXPECT_EQ(records[i].triple, triples[i]);
  }
}

TEST(WalGroupCommit, OneSyncPerBatchNotPerRecord) {
  // Grouped: 100 records, one sync.
  SimulatedBlockDevice grouped_device;
  WriteAheadLog grouped(&grouped_device);
  ASSERT_TRUE(grouped.Open().ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(grouped
                    .AppendInsert(ObjTriple("http://e.org/s" +
                                                std::to_string(i),
                                            "http://e.org/p",
                                            "http://e.org/o"))
                    .ok());
  }
  EXPECT_EQ(grouped.pending_records(), 100u);
  ASSERT_TRUE(grouped.Sync().ok());
  EXPECT_EQ(grouped.pending_records(), 0u);
  EXPECT_EQ(grouped.stats().syncs, 1u);

  // Ungrouped: same 100 records, sync after each.
  SimulatedBlockDevice single_device;
  WriteAheadLog single(&single_device);
  ASSERT_TRUE(single.Open().ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(single
                    .AppendInsert(ObjTriple("http://e.org/s" +
                                                std::to_string(i),
                                            "http://e.org/p",
                                            "http://e.org/o"))
                    .ok());
    ASSERT_TRUE(single.Sync().ok());
  }

  // The batch costs ceil(bytes / 4096) data-block writes (+1 header write);
  // per-record syncing rewrites the tail block for every record.
  EXPECT_GE(single_device.stats().writes, 100u);
  EXPECT_LE(grouped_device.stats().writes,
            1 + (grouped.stats().bytes_appended + kBlockSize - 1) /
                    kBlockSize);
  EXPECT_LT(grouped_device.stats().writes,
            single_device.stats().writes / 10);

  // Both logs replay identically regardless of the commit pattern.
  EXPECT_EQ(ReplayAll(grouped).size(), 100u);
  EXPECT_EQ(ReplayAll(single).size(), 100u);
}

TEST(WalTruncate, LeavesEmptyReplayableLog) {
  SimulatedBlockDevice device;
  WriteAheadLog wal(&device);
  ASSERT_TRUE(wal.Open().ok());
  EXPECT_EQ(wal.epoch(), 1u);

  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(wal.AppendInsert(ObjTriple("http://e.org/s" +
                                               std::to_string(i),
                                           "http://e.org/p",
                                           "http://e.org/o"))
                    .ok());
  }
  ASSERT_TRUE(wal.Sync().ok());
  ASSERT_EQ(wal.ReplayableMutations().ValueOr(99), 50u);

  ASSERT_TRUE(wal.Truncate(/*base_triples=*/50).ok());
  EXPECT_EQ(wal.epoch(), 2u);
  EXPECT_EQ(wal.ReplayableMutations().ValueOr(99), 0u);

  // The only surviving record is the compact-epoch marker.
  const auto records = ReplayAll(wal);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, WalRecordType::kCompactEpoch);
  EXPECT_EQ(records[0].base_triples, 50u);

  // The truncated log accepts and replays fresh appends; the 50 stale
  // records never resurface even though their bytes are still on the
  // device (epoch fencing).
  ASSERT_TRUE(
      wal.AppendInsert(ObjTriple("http://e.org/new", "http://e.org/p",
                                 "http://e.org/o"))
          .ok());
  ASSERT_TRUE(wal.Sync().ok());
  EXPECT_EQ(wal.ReplayableMutations().ValueOr(99), 1u);
}

TEST(WalTruncate, ReleasesStaleBlocksAcrossRepeatedCompactions) {
  SimulatedBlockDevice device;
  WriteAheadLog wal(&device);
  ASSERT_TRUE(wal.Open().ok());

  // Each cycle writes a multi-block batch, then truncates (one durable
  // compaction). Freed blocks must go back to the device, not merely be
  // reused: the block count right after every truncation is the live log
  // (2 header slots + the marker's tail block), and the high water inside
  // a cycle is bounded by that cycle's own batch — no ratchet.
  uint64_t single_cycle_high_water = 0;
  for (int cycle = 0; cycle < 8; ++cycle) {
    for (int i = 0; i < 24; ++i) {
      ASSERT_TRUE(
          wal.AppendInsert({rdf::Term::Iri("http://e.org/s" +
                                           std::to_string(i)),
                            rdf::Term::Iri("http://e.org/dp"),
                            rdf::Term::Literal(std::string(1500, 'x'))})
              .ok());
    }
    ASSERT_TRUE(wal.Sync().ok());
    ASSERT_GT(device.num_blocks(), 4u) << "batch should span several blocks";
    if (cycle == 0) single_cycle_high_water = device.num_blocks();
    // +1 slack: later cycles start behind the compact-epoch marker, which
    // can push the same payload across one extra block boundary.
    EXPECT_LE(device.num_blocks(), single_cycle_high_water + 1)
        << "cycle " << cycle << ": device block count must not ratchet up";

    ASSERT_TRUE(wal.Truncate(/*base_triples=*/24).ok());
    EXPECT_EQ(device.num_blocks(), 3u)
        << "cycle " << cycle
        << ": post-truncation device = 2 header slots + marker tail block";
    EXPECT_EQ(wal.ReplayableMutations().ValueOr(99), 0u);
  }
  EXPECT_GT(device.stats().trimmed_blocks, 0u);
  EXPECT_GT(wal.stats().blocks_released, 0u);

  // The trimmed log still appends, syncs and survives a reopen.
  ASSERT_TRUE(wal.AppendInsert(ObjTriple("http://e.org/s", "http://e.org/p",
                                         "http://e.org/o"))
                  .ok());
  ASSERT_TRUE(wal.Sync().ok());
  WriteAheadLog reopened(&device);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.ReplayableMutations().ValueOr(0), 1u);
}

TEST(WalReopen, ScansToTailAndContinuesAppending) {
  SimulatedBlockDevice device;
  {
    WriteAheadLog wal(&device);
    ASSERT_TRUE(wal.Open().ok());
    for (int i = 0; i < 7; ++i) {
      ASSERT_TRUE(wal.AppendInsert(ObjTriple("http://e.org/a" +
                                                 std::to_string(i),
                                             "http://e.org/p",
                                             "http://e.org/o"))
                      .ok());
    }
    ASSERT_TRUE(wal.Sync().ok());
  }  // first process "exits"

  WriteAheadLog wal(&device);
  ASSERT_TRUE(wal.Open().ok());
  EXPECT_EQ(wal.ReplayableMutations().ValueOr(0), 7u);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(wal.AppendRemove(ObjTriple("http://e.org/a" +
                                               std::to_string(i),
                                           "http://e.org/p",
                                           "http://e.org/o"))
                    .ok());
  }
  ASSERT_TRUE(wal.Sync().ok());

  const auto records = ReplayAll(wal);
  ASSERT_EQ(records.size(), 10u);
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(records[i].type, WalRecordType::kInsert);
  }
  for (size_t i = 7; i < 10; ++i) {
    EXPECT_EQ(records[i].type, WalRecordType::kRemove);
  }
}

TEST(WalReopen, RejectsForeignDevice) {
  SimulatedBlockDevice device;
  const uint64_t b = device.AllocateBlock();
  uint8_t junk[kBlockSize];
  std::memset(junk, 0xAB, sizeof(junk));
  device.WriteBlock(b, junk);

  WriteAheadLog wal(&device);
  EXPECT_FALSE(wal.Open().ok());
}

TEST(WalFailure, SyncFailurePropagatesAndSticks) {
  FailingBlockDevice device(/*writes_before_failure=*/1);  // header only
  WriteAheadLog wal(&device);
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.AppendInsert(ObjTriple("http://e.org/s", "http://e.org/p",
                                         "http://e.org/o"))
                  .ok());
  EXPECT_FALSE(wal.Sync().ok());
  // The log object is dead after a device failure.
  EXPECT_FALSE(wal.AppendInsert(ObjTriple("http://e.org/s2",
                                          "http://e.org/p",
                                          "http://e.org/o"))
                   .ok());
  EXPECT_FALSE(wal.Truncate(0).ok());
}

TEST(WalFailure, CorruptTailIsCutOffOnReplay) {
  SimulatedBlockDevice device;
  WriteAheadLog wal(&device);
  ASSERT_TRUE(wal.Open().ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(wal.AppendInsert(ObjTriple("http://e.org/s" +
                                               std::to_string(i),
                                           "http://e.org/p",
                                           "http://e.org/o"))
                    .ok());
    ASSERT_TRUE(wal.Sync().ok());
  }

  // Bit rot in the last record's bytes: flip one byte near the tail.
  const uint64_t data_block = 2;  // first record block (0/1 are headers)
  uint8_t block[kBlockSize];
  device.ReadBlock(data_block, block);
  // Find the last nonzero byte (inside the final record) and flip it.
  size_t last = kBlockSize;
  while (last > 0 && block[last - 1] == 0) --last;
  ASSERT_GT(last, 0u);
  block[last - 1] ^= 0xFF;
  device.WriteBlock(data_block, block);

  WriteAheadLog reopened(&device);
  ASSERT_TRUE(reopened.Open().ok());
  // Exactly the four intact records survive; the corrupt tail is dropped.
  EXPECT_EQ(reopened.ReplayableMutations().ValueOr(0), 4u);
}

TEST(WalFailure, TornHeaderRewriteDuringTruncateKeepsOldEpochReadable) {
  // Pass A: measure the block writes before Truncate on a healthy device.
  uint64_t writes_before_truncate = 0;
  {
    SimulatedBlockDevice device;
    WriteAheadLog wal(&device);
    ASSERT_TRUE(wal.Open().ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(wal.AppendInsert(ObjTriple("http://e.org/s" +
                                                 std::to_string(i),
                                             "http://e.org/p",
                                             "http://e.org/o"))
                      .ok());
    }
    ASSERT_TRUE(wal.Sync().ok());
    writes_before_truncate = device.stats().writes;
  }

  // Pass B: the power cut tears the header-slot rewrite that Truncate()
  // issues first, mid-way through the 24 meaningful header bytes (magic +
  // version land, the epoch/CRC region keeps the slot's old content) so
  // the new slot's CRC cannot validate.
  FailingBlockDevice device(writes_before_truncate, /*torn_bytes=*/12);
  WriteAheadLog wal(&device);
  ASSERT_TRUE(wal.Open().ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(wal.AppendInsert(ObjTriple("http://e.org/s" +
                                               std::to_string(i),
                                           "http://e.org/p",
                                           "http://e.org/o"))
                    .ok());
  }
  ASSERT_TRUE(wal.Sync().ok());
  const uint64_t old_epoch = wal.epoch();
  EXPECT_FALSE(wal.Truncate(5).ok()) << "the torn header write must fail";

  // Reopen: the untouched slot is authoritative — the old epoch and all
  // five records survive (replaying them onto the snapshot persisted just
  // before truncation is an idempotent no-op).
  WriteAheadLog reopened(&device);
  ASSERT_TRUE(reopened.Open().ok())
      << "a torn truncation must not brick the log";
  EXPECT_EQ(reopened.epoch(), old_epoch);
  EXPECT_EQ(reopened.ReplayableMutations().ValueOr(0), 5u);
}

TEST(WalFailure, OversizedRecordIsRejectedWithoutPoisoningTheLog) {
  SimulatedBlockDevice device;
  WriteAheadLog wal(&device);
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.AppendInsert(ObjTriple("http://e.org/s", "http://e.org/p",
                                         "http://e.org/o"))
                  .ok());
  ASSERT_TRUE(wal.Sync().ok());

  // > 1 MiB literal: rejected as bad input, not a process abort...
  const rdf::Triple huge = {rdf::Term::Iri("http://e.org/s"),
                            rdf::Term::Iri("http://e.org/dp"),
                            rdf::Term::Literal(std::string(2u << 20, 'x'))};
  const Status st = wal.AppendInsert(huge);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  wal.DiscardPending();

  // ...and after discarding the batch the log keeps working: the next
  // record syncs and the sequence stays gapless across a reopen.
  ASSERT_TRUE(wal.AppendInsert(ObjTriple("http://e.org/s2", "http://e.org/p",
                                         "http://e.org/o"))
                  .ok());
  ASSERT_TRUE(wal.Sync().ok());
  WriteAheadLog reopened(&device);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.ReplayableMutations().ValueOr(0), 2u);
}

}  // namespace
}  // namespace sedge::io
