// serve::QueryService unit tests: admission-queue semantics (bounded
// depth, kResourceExhausted backpressure, clean shutdown draining every
// admitted request), per-generation plan-cache invalidation across
// Compact()/CompactAsync() swaps, and the serve_* metrics series.
//
// Pause() makes the queue tests deterministic: with the readers held
// idle, admission outcomes depend only on the submit count, never on how
// fast a worker drains.

#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "rdf/vocabulary.h"
#include "serve/query_service.h"

namespace sedge {
namespace {

std::string Iri(const std::string& kind, uint64_t i) {
  return "http://e.org/" + kind + std::to_string(i);
}

rdf::Graph SeedGraph() {
  rdf::Graph seed;
  for (uint64_t s = 0; s < 20; ++s) {
    const rdf::Term subject = rdf::Term::Iri(Iri("s", s));
    seed.Add(subject, rdf::Term::Iri(Iri("p", 0)),
             rdf::Term::Iri(Iri("o", s % 5)));
    seed.Add(subject, rdf::Term::Iri(Iri("dp", 0)),
             rdf::Term::Literal(std::to_string(s)));
    seed.Add(subject, rdf::Term::Iri(rdf::kRdfType),
             rdf::Term::Iri(Iri("C", s % 3)));
  }
  return seed;
}

const char kStarQuery[] =
    "SELECT ?s ?o WHERE { ?s <http://e.org/p0> ?o . "
    "?s <http://e.org/dp0> ?v }";

std::unique_ptr<Database> MakeDatabase() {
  auto db = std::make_unique<Database>();
  db->set_reasoning(false);
  db->set_compaction_ratio(0);  // tests trigger folds explicitly
  EXPECT_TRUE(db->LoadData(SeedGraph()).ok());
  return db;
}

uint64_t CounterValue(const Database& db, const std::string& name) {
  return db.metrics().GetCounter(name)->value();
}

TEST(QueryService, ExecutesQueriesAndRecordsMetrics) {
  auto db = MakeDatabase();
  serve::ServeOptions opts;
  opts.readers = 2;
  serve::QueryService service(db.get(), opts);
  EXPECT_TRUE(db->snapshot_isolation());

  const int kRequests = 8;
  for (int i = 0; i < kRequests; ++i) {
    const serve::QueryService::Response resp = service.Execute(kStarQuery);
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    EXPECT_EQ(resp.rows, 20u);
    EXPECT_EQ(resp.result.size(), 20u);
    EXPECT_EQ(resp.generation, db->store_generation());
  }

  // Parse errors come back as responses, counted separately.
  const serve::QueryService::Response bad = service.Execute("SELECT {");
  EXPECT_FALSE(bad.status.ok());

  service.Shutdown();
  EXPECT_EQ(CounterValue(*db, "serve_requests_total"), kRequests + 1u);
  EXPECT_EQ(CounterValue(*db, "serve_completed_total"),
            static_cast<uint64_t>(kRequests));
  EXPECT_EQ(CounterValue(*db, "serve_errors_total"), 1u);
  EXPECT_EQ(CounterValue(*db, "serve_rejected_total"), 0u);
  // Every admitted request went through both latency histograms.
  EXPECT_EQ(db->metrics().GetHistogram("serve_request_seconds")->count(),
            kRequests + 1u);
  EXPECT_EQ(db->metrics().GetHistogram("serve_queue_wait_seconds")->count(),
            kRequests + 1u);
  EXPECT_EQ(db->metrics().GetGauge("serve_queue_depth")->value(), 0.0);
  EXPECT_EQ(db->metrics().GetGauge("serve_readers")->value(), 2.0);
  // The service's executors fold into the database-wide query stats.
  EXPECT_GT(db->query_stats().merge_join_extends +
                db->query_stats().row_extends,
            0u);
}

TEST(QueryService, BoundedQueueRejectsWithBackpressure) {
  auto db = MakeDatabase();
  serve::ServeOptions opts;
  opts.readers = 1;
  opts.queue_depth = 4;
  serve::QueryService service(db.get(), opts);
  service.Pause();  // hold the reader: admission outcomes are exact

  std::vector<std::future<serve::QueryService::Response>> admitted;
  for (size_t i = 0; i < opts.queue_depth; ++i) {
    admitted.push_back(service.Submit(kStarQuery));
  }
  EXPECT_EQ(service.queue_size(), opts.queue_depth);

  // Over depth: immediately-resolved kResourceExhausted, nothing queued.
  for (int i = 0; i < 3; ++i) {
    std::future<serve::QueryService::Response> overflow =
        service.Submit(kStarQuery);
    ASSERT_EQ(overflow.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const serve::QueryService::Response resp = overflow.get();
    EXPECT_TRUE(resp.status.IsResourceExhausted()) << resp.status.ToString();
  }
  EXPECT_EQ(service.queue_size(), opts.queue_depth);
  EXPECT_EQ(CounterValue(*db, "serve_rejected_total"), 3u);
  EXPECT_EQ(CounterValue(*db, "serve_requests_total"), opts.queue_depth);

  service.Resume();
  for (auto& f : admitted) {
    const serve::QueryService::Response resp = f.get();
    EXPECT_TRUE(resp.status.ok()) << resp.status.ToString();
    EXPECT_EQ(resp.rows, 20u);
  }
  EXPECT_EQ(CounterValue(*db, "serve_completed_total"), opts.queue_depth);
}

TEST(QueryService, ShutdownDrainsAdmittedRequestsThenRejects) {
  auto db = MakeDatabase();
  serve::ServeOptions opts;
  opts.readers = 2;
  opts.queue_depth = 16;
  serve::QueryService service(db.get(), opts);
  service.Pause();

  std::vector<std::future<serve::QueryService::Response>> admitted;
  for (int i = 0; i < 10; ++i) {
    admitted.push_back(service.Submit(kStarQuery));
  }
  EXPECT_EQ(service.queue_size(), 10u);

  // Shutdown resumes the paused readers, drains all ten, then joins.
  service.Shutdown();
  for (auto& f : admitted) {
    const serve::QueryService::Response resp = f.get();
    EXPECT_TRUE(resp.status.ok()) << resp.status.ToString();
    EXPECT_EQ(resp.rows, 20u);
  }
  EXPECT_EQ(service.queue_size(), 0u);
  EXPECT_EQ(CounterValue(*db, "serve_completed_total"), 10u);

  // Post-shutdown submissions resolve immediately as kUnavailable.
  std::future<serve::QueryService::Response> late =
      service.Submit(kStarQuery);
  ASSERT_EQ(late.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_TRUE(late.get().status.IsUnavailable());
  EXPECT_EQ(CounterValue(*db, "serve_rejected_total"), 1u);

  service.Shutdown();  // idempotent
}

TEST(QueryService, PlanCacheInvalidatesAcrossCompactionSwaps) {
  auto db = MakeDatabase();
  serve::ServeOptions opts;
  opts.readers = 1;
  serve::QueryService service(db.get(), opts);

  const auto hits = [&] {
    return CounterValue(*db, "serve_plan_cache_hits_total");
  };
  const auto misses = [&] {
    return CounterValue(*db, "serve_plan_cache_misses_total");
  };
  const auto invalidations = [&] {
    return CounterValue(*db, "serve_plan_cache_invalidations_total");
  };

  EXPECT_FALSE(service.Execute(kStarQuery).plan_cache_hit);
  EXPECT_EQ(misses(), 1u);
  // A repeat inside the same content epoch short-circuits at the result
  // cache; the plan cache is not even consulted.
  {
    const serve::QueryService::Response repeat = service.Execute(kStarQuery);
    EXPECT_TRUE(repeat.result_cache_hit);
    EXPECT_FALSE(repeat.plan_cache_hit);
  }
  EXPECT_EQ(hits(), 0u);

  const auto insert_match = [&](uint64_t s) {
    rdf::Graph batch;
    batch.Add(rdf::Term::Iri(Iri("s", s)), rdf::Term::Iri(Iri("p", 0)),
              rdf::Term::Iri(Iri("o", 1)));
    batch.Add(rdf::Term::Iri(Iri("s", s)), rdf::Term::Iri(Iri("dp", 0)),
              rdf::Term::Literal(std::to_string(s)));
    ASSERT_TRUE(db->Insert(batch).ok());
  };

  // Writes alone publish new snapshots but keep the base generation: the
  // result cache drops its epoch, the cached plan stays valid (ids are
  // stable within a generation).
  insert_match(50);
  EXPECT_TRUE(service.Execute(kStarQuery).plan_cache_hit);
  EXPECT_EQ(hits(), 1u);
  EXPECT_EQ(invalidations(), 0u);

  // A synchronous fold swaps the base generation: wholesale invalidation.
  const uint64_t gen_before = db->store_generation();
  ASSERT_TRUE(db->Compact().ok());
  ASSERT_GT(db->store_generation(), gen_before);
  const serve::QueryService::Response after_sync =
      service.Execute(kStarQuery);
  EXPECT_FALSE(after_sync.plan_cache_hit);
  EXPECT_EQ(after_sync.generation, db->store_generation());
  EXPECT_EQ(invalidations(), 1u);
  EXPECT_TRUE(service.Execute(kStarQuery).result_cache_hit);

  // An async fold's swap invalidates the same way.
  insert_match(51);
  ASSERT_TRUE(db->CompactAsync().ok());
  ASSERT_TRUE(db->WaitForCompaction().ok());
  EXPECT_FALSE(service.Execute(kStarQuery).plan_cache_hit);
  EXPECT_EQ(invalidations(), 2u);
  EXPECT_TRUE(service.Execute(kStarQuery).result_cache_hit);

  // Rows reflect the post-fold state: 20 seed + 2 inserted matches.
  EXPECT_EQ(service.Execute(kStarQuery).rows, 22u);
}

TEST(QueryService, ResultCacheServesRepeatsAndInvalidatesOnWrites) {
  auto db = MakeDatabase();
  serve::ServeOptions opts;
  opts.readers = 1;
  serve::QueryService service(db.get(), opts);

  const auto hits = [&] {
    return CounterValue(*db, "serve_result_cache_hits_total");
  };
  const auto misses = [&] {
    return CounterValue(*db, "serve_result_cache_misses_total");
  };
  const auto invalidations = [&] {
    return CounterValue(*db, "serve_result_cache_invalidations_total");
  };

  const serve::QueryService::Response first = service.Execute(kStarQuery);
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.result_cache_hit);
  EXPECT_EQ(misses(), 1u);

  const serve::QueryService::Response repeat = service.Execute(kStarQuery);
  EXPECT_TRUE(repeat.result_cache_hit);
  EXPECT_EQ(hits(), 1u);
  // A hit is byte-identical to re-execution: same rows, same decoded terms.
  EXPECT_EQ(repeat.rows, first.rows);
  EXPECT_EQ(repeat.result.rows, first.result.rows);

  // Any write bumps the snapshot's write watermark: the whole epoch is
  // stale and the next lookup drops it.
  rdf::Graph batch;
  batch.Add(rdf::Term::Iri(Iri("s", 90)), rdf::Term::Iri(Iri("p", 0)),
            rdf::Term::Iri(Iri("o", 0)));
  batch.Add(rdf::Term::Iri(Iri("s", 90)), rdf::Term::Iri(Iri("dp", 0)),
            rdf::Term::Literal("90"));
  ASSERT_TRUE(db->Insert(batch).ok());

  const serve::QueryService::Response after_write =
      service.Execute(kStarQuery);
  EXPECT_FALSE(after_write.result_cache_hit);
  EXPECT_EQ(after_write.rows, first.rows + 1);
  EXPECT_EQ(invalidations(), 1u);
  EXPECT_TRUE(service.Execute(kStarQuery).result_cache_hit);
}

TEST(QueryService, ConcurrentClientsSeeConsistentSnapshots) {
  auto db = MakeDatabase();
  serve::ServeOptions opts;
  opts.readers = 4;
  serve::QueryService service(db.get(), opts);

  // Clients hammer the same query while a writer inserts matching rows;
  // every response must report a row count consistent with *some* write
  // watermark (20 + writes applied at its pinned snapshot), never a
  // half-applied batch.
  std::thread writer([&] {
    for (uint64_t i = 0; i < 30; ++i) {
      rdf::Graph batch;
      batch.Add(rdf::Term::Iri(Iri("w", i)), rdf::Term::Iri(Iri("p", 0)),
                rdf::Term::Iri(Iri("o", 0)));
      batch.Add(rdf::Term::Iri(Iri("w", i)), rdf::Term::Iri(Iri("dp", 0)),
                rdf::Term::Literal(std::to_string(i)));
      EXPECT_TRUE(db->Insert(batch).ok());
    }
  });
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < 40; ++i) {
        const serve::QueryService::Response resp =
            service.Execute(kStarQuery);
        if (!resp.status.ok()) {
          ++failures;
          continue;
        }
        // Each insert batch adds exactly one matching subject and the
        // writer is the only batch source, so a batch-consistent
        // snapshot at watermark w yields exactly 20 + w rows; a torn
        // read would break the equality.
        if (resp.rows != 20u + resp.writes) ++failures;
      }
    });
  }
  writer.join();
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  // After the writer finished, a fresh request sees all 30 batches.
  EXPECT_EQ(service.Execute(kStarQuery).rows, 50u);
}

}  // namespace
}  // namespace sedge
