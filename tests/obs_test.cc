// Observability-layer tests: histogram percentile correctness against a
// known-distribution oracle, registry export round-trips (JSON parse +
// Prometheus line format), span timing monotonicity, concurrent recording
// (the TSan job runs this binary), and end-to-end query profiles /
// Prometheus series over real engine workloads.

#include <atomic>
#include <cctype>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "io/block_device.h"
#include "obs/metrics.h"
#include "obs/query_profile.h"
#include "workloads/lubm_generator.h"
#include "workloads/lubm_queries.h"

namespace sedge {
namespace {

// ------------------------------------------------------- JSON validation

// Minimal recursive-descent JSON parser: accepts exactly the RFC 8259
// grammar shape (values, objects, arrays, strings with the escapes the
// exporter emits, numbers). Returns true iff `text` is one valid value.
class JsonValidator {
 public:
  explicit JsonValidator(std::string text) : s_(std::move(text)) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Expect(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek('}')) return true;
      if (!Expect(',')) return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) return true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(']')) return true;
      if (!Expect(',')) return false;
    }
  }

  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return Expect('"');
  }

  bool Number() {
    const size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    const std::string expect(lit);
    if (s_.compare(pos_, expect.size(), expect) != 0) return false;
    pos_ += expect.size();
    return true;
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Expect(char c) { return Peek(c); }

  const std::string s_;
  size_t pos_ = 0;
};

// --------------------------------------------------------------- histogram

TEST(Histogram, KnownDistributionOracle) {
  obs::Histogram h(obs::Histogram::Unit::kCount);
  // Uniform 1..10000: every percentile of the oracle is p * 100.
  for (uint64_t v = 1; v <= 10000; ++v) h.RecordValue(v);
#ifndef SEDGE_OBS_DISABLED
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_DOUBLE_EQ(h.sum(), 10000.0 * 10001.0 / 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 10000.0);
  // 8 sub-buckets per octave bound the relative quantization error of any
  // reported percentile by 1/8; allow that plus interpolation slack.
  EXPECT_NEAR(h.Percentile(50), 5000.0, 5000.0 * 0.15);
  EXPECT_NEAR(h.Percentile(90), 9000.0, 9000.0 * 0.15);
  EXPECT_NEAR(h.Percentile(99), 9900.0, 9900.0 * 0.15);
  EXPECT_LE(h.Percentile(100), h.max());
  EXPECT_GE(h.Percentile(99), h.Percentile(90));
  EXPECT_GE(h.Percentile(90), h.Percentile(50));
#endif
}

TEST(Histogram, SecondsUnitRoundTrip) {
  obs::Histogram h(obs::Histogram::Unit::kSeconds);
  for (int i = 0; i < 100; ++i) h.RecordSeconds(0.001);  // 1 ms
#ifndef SEDGE_OBS_DISABLED
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.sum(), 0.1, 1e-6);
  EXPECT_NEAR(h.Percentile(50), 0.001, 0.001 * 0.15);
  EXPECT_NEAR(h.max(), 0.001, 1e-6);
#endif
}

TEST(Histogram, ZeroAndHugeValuesDoNotMisfile) {
  obs::Histogram h(obs::Histogram::Unit::kCount);
  h.RecordValue(0);
  h.RecordValue(1);
  h.RecordValue(UINT64_MAX);
#ifndef SEDGE_OBS_DISABLED
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.max(), static_cast<double>(UINT64_MAX));
  const auto buckets = h.SnapshotNonEmpty();
  ASSERT_FALSE(buckets.empty());
  EXPECT_EQ(buckets.back().cumulative_count, 3u);
#endif
}

TEST(Histogram, ConcurrentRecordingStaysConsistent) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("concurrent_seconds");
  obs::Counter* c = registry.GetCounter("concurrent_total");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::atomic<bool> stop{false};
  // One exporter thread racing the recorders: relaxed-atomic cells make
  // the snapshot torn-but-data-race-free; TSan runs this binary.
  std::thread exporter([&registry, &stop]() {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string json = registry.ExportJson();
      ASSERT_FALSE(json.empty());
      (void)registry.ExportPrometheus();
    }
  });
  std::vector<std::thread> recorders;
  recorders.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([h, c]() {
      for (int i = 1; i <= kPerThread; ++i) {
        h->RecordSeconds(1e-6 * static_cast<double>(i % 1000 + 1));
        c->Increment();
      }
    });
  }
  for (auto& th : recorders) th.join();
  stop.store(true);
  exporter.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kPerThread);
#ifndef SEDGE_OBS_DISABLED
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kPerThread);
#endif
}

// ---------------------------------------------------------------- registry

TEST(MetricsRegistry, HandlesAreStableAndLabelled) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("x_total");
  EXPECT_EQ(a, registry.GetCounter("x_total"));
  // Labels are part of the identity.
  obs::Histogram* serialize = registry.GetHistogram(
      "phase_seconds", obs::Histogram::Unit::kSeconds, "phase=\"a\"");
  obs::Histogram* flip = registry.GetHistogram(
      "phase_seconds", obs::Histogram::Unit::kSeconds, "phase=\"b\"");
  EXPECT_NE(serialize, flip);
  EXPECT_EQ(registry.FindHistogram("phase_seconds", "phase=\"a\""),
            serialize);
  EXPECT_EQ(registry.FindHistogram("phase_seconds", "phase=\"zzz\""),
            nullptr);
  EXPECT_EQ(registry.FindCounter("never_created_total"), nullptr);
}

TEST(MetricsRegistry, ExportJsonParsesAndCarriesValues) {
  obs::MetricsRegistry registry;
  registry.GetCounter("wal_syncs_total")->Add(7);
  registry.GetGauge("delta_overlay_entries")->Set(42.5);
  obs::Histogram* h = registry.GetHistogram("wal_sync_seconds");
  for (int i = 0; i < 10; ++i) h->RecordSeconds(0.002);
  const std::string json = registry.ExportJson();
  JsonValidator validator(json);
  EXPECT_TRUE(validator.Valid()) << json;
  EXPECT_NE(json.find("\"wal_syncs_total\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"delta_overlay_entries\":42.5"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"wal_sync_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsRegistry, ExportPrometheusLineFormat) {
  obs::MetricsRegistry registry;
  registry.GetCounter("wal_syncs_total")->Add(3);
  registry.GetGauge("base_triples")->Set(1000);
  obs::Histogram* h = registry.GetHistogram("wal_sync_seconds");
  h->RecordSeconds(0.001);
  h->RecordSeconds(0.004);
  obs::Histogram* phase = registry.GetHistogram(
      "checkpoint_phase_seconds", obs::Histogram::Unit::kSeconds,
      "phase=\"extent_write\"");
  phase->RecordSeconds(0.01);
  const std::string text = registry.ExportPrometheus();

  EXPECT_NE(text.find("# TYPE wal_syncs_total counter"), std::string::npos);
  EXPECT_NE(text.find("wal_syncs_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE base_triples gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE wal_sync_seconds histogram"),
            std::string::npos);
  EXPECT_NE(
      text.find("checkpoint_phase_seconds_bucket{phase=\"extent_write\","),
      std::string::npos)
      << text;
#ifndef SEDGE_OBS_DISABLED
  EXPECT_NE(text.find("wal_sync_seconds_bucket{le=\""), std::string::npos);
  EXPECT_NE(text.find("wal_sync_seconds_count 2"), std::string::npos);
#endif

  // Every line is a comment or `name[{labels}] value`.
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE ", 0), 0u) << line;
      continue;
    }
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(name.empty()) << line;
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(name[0])) ||
                name[0] == '_')
        << line;
    EXPECT_FALSE(value.empty()) << line;
    // Value parses as a number.
    size_t parsed = 0;
    EXPECT_NO_THROW({ (void)std::stod(value, &parsed); }) << line;
    EXPECT_EQ(parsed, value.size()) << line;
  }
}

// ------------------------------------------------------------------- spans

TEST(ScopedSpan, TimingIsMonotonicAndNested) {
  obs::MetricsRegistry registry;
  obs::Histogram* outer_h = registry.GetHistogram("outer_seconds");
  obs::Histogram* inner_h = registry.GetHistogram("inner_seconds");
  obs::ScopedSpan outer(outer_h);
  double inner_seconds = 0;
  {
    obs::ScopedSpan inner(inner_h);
    // Deterministic work instead of a sleep.
    volatile uint64_t sink = 0;
    for (uint64_t i = 0; i < 200000; ++i) sink += i;
    inner_seconds = inner.Stop();
  }
  const double outer_seconds = outer.Stop();
#ifndef SEDGE_OBS_DISABLED
  EXPECT_GE(inner_seconds, 0.0);
  EXPECT_GE(outer_seconds, inner_seconds);  // outer encloses inner
  EXPECT_EQ(outer_h->count(), 1u);
  EXPECT_EQ(inner_h->count(), 1u);
  EXPECT_NEAR(outer_h->sum(), outer_seconds, outer_seconds * 0.2 + 1e-6);
  // A stopped span does not double-record at scope exit.
  EXPECT_EQ(outer.Stop(), 0.0);
  EXPECT_EQ(outer_h->count(), 1u);
#else
  EXPECT_EQ(outer_seconds, 0.0);
  EXPECT_EQ(inner_seconds, 0.0);
#endif
  // Null histogram → inert span.
  obs::ScopedSpan inert(nullptr);
  EXPECT_EQ(inert.Stop(), 0.0);
}

TEST(ScopedSpan, MacroRecordsIntoRegistry) {
  obs::MetricsRegistry registry;
  obs::MetricsRegistry* reg = &registry;
  {
    SEDGE_SPAN(reg, "wal.sync");
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink += i;
  }
#ifndef SEDGE_OBS_DISABLED
  const obs::Histogram* h = registry.FindHistogram("wal.sync");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
#endif
  obs::MetricsRegistry* null_registry = nullptr;
  {
    SEDGE_SPAN(null_registry, "never");  // must be inert, not crash
  }
}

// --------------------------------------------------------- query profiles

class QueryProfileLubmTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workloads::LubmConfig config;
    config.departments_per_university = 2;  // ~10K triples: fast, complete
    graph_ = new rdf::Graph(workloads::LubmGenerator::Generate(config));
    db_ = new Database();
    db_->LoadOntology(workloads::LubmGenerator::BuildOntology());
    ASSERT_TRUE(db_->LoadData(*graph_).ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete graph_;
    db_ = nullptr;
    graph_ = nullptr;
  }

  static rdf::Graph* graph_;
  static Database* db_;
};

rdf::Graph* QueryProfileLubmTest::graph_ = nullptr;
Database* QueryProfileLubmTest::db_ = nullptr;

TEST_F(QueryProfileLubmTest, AllStandard14QueriesProduceSpanTrees) {
  const auto queries = workloads::LubmQueries::Standard14(*graph_);
  ASSERT_EQ(queries.size(), 14u);
  for (const auto& spec : queries) {
    db_->set_reasoning(spec.reasoning);
    auto profile = db_->ExplainQuery(spec.sparql);
    ASSERT_TRUE(profile.ok()) << spec.id << ": "
                              << profile.status().ToString();
    const obs::QueryProfile& p = profile.value();
    EXPECT_EQ(p.root.name, "query") << spec.id;
    EXPECT_GT(p.root.seconds, 0.0) << spec.id;
    const obs::ProfileNode* parse = p.root.Find("parse");
    const obs::ProfileNode* execute = p.root.Find("execute");
    ASSERT_NE(parse, nullptr) << spec.id;
    ASSERT_NE(execute, nullptr) << spec.id;
    // Stage times are sub-intervals of the root span.
    EXPECT_LE(parse->seconds + execute->seconds,
              p.root.seconds + 0.005)
        << spec.id;
    // The executor recorded planning and one span per pattern, each with
    // path attribution in its name and rows in its stats.
    EXPECT_NE(execute->Find("optimize"), nullptr) << spec.id;
    uint64_t tp_nodes = 0;
    for (const auto& child : execute->children) {
      if (child->name.rfind("tp/", 0) != 0) continue;
      ++tp_nodes;
      EXPECT_GE(child->StatOr("rows_out", -1), 0)
          << spec.id << " " << child->detail;
    }
    EXPECT_GT(tp_nodes, 0u) << spec.id;
    EXPECT_GE(execute->StatOr("rows", -1), 0) << spec.id;
    // Renderings stay well-formed.
    EXPECT_NE(p.ToString().find("query"), std::string::npos);
    JsonValidator validator(p.ToJson());
    EXPECT_TRUE(validator.Valid()) << spec.id << "\n" << p.ToJson();
  }
  db_->set_reasoning(true);
}

TEST_F(QueryProfileLubmTest, Q2ProfileShowsMergeJoinExtends) {
  const auto queries = workloads::LubmQueries::Standard14(*graph_);
  const auto& q2 = queries[1];
  ASSERT_EQ(q2.id, "Q2");
  db_->set_reasoning(q2.reasoning);
  auto profile = db_->ExplainQuery(q2.sparql);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  const obs::ProfileNode* execute = profile.value().root.Find("execute");
  ASSERT_NE(execute, nullptr);
  EXPECT_GT(execute->StatOr("merge_join_extends", 0), 0)
      << profile.value().ToString();
  // At least one pattern span is attributed to the merge-join path.
  EXPECT_NE(execute->Find("tp/merge_join"), nullptr)
      << profile.value().ToString();
  db_->set_reasoning(true);
}

TEST_F(QueryProfileLubmTest, ProfiledRowsMatchQueryCount) {
  const auto queries = workloads::LubmQueries::Standard14(*graph_);
  for (const auto& spec : queries) {
    db_->set_reasoning(spec.reasoning);
    auto profile = db_->ExplainQuery(spec.sparql);
    auto count = db_->QueryCount(spec.sparql);
    ASSERT_TRUE(profile.ok() && count.ok()) << spec.id;
    EXPECT_EQ(profile.value().rows, count.value()) << spec.id;
  }
  db_->set_reasoning(true);
}

// ----------------------------------------------- end-to-end engine metrics

TEST(EngineMetrics, WalInsertCompactQueryWorkloadExportsSeries) {
  io::SimulatedBlockDevice device;
  auto opened = Database::Open(&device);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(opened).value();
  db->set_compaction_ratio(0);  // explicit folds only

  for (int batch = 0; batch < 20; ++batch) {
    rdf::Graph g;
    for (int i = 0; i < 25; ++i) {
      const int n = batch * 25 + i;
      g.Add(rdf::Term::Iri("http://e.org/s" + std::to_string(n)),
            rdf::Term::Iri("http://e.org/p" + std::to_string(n % 5)),
            rdf::Term::Literal(std::to_string(n)));
    }
    ASSERT_TRUE(db->Insert(g).ok());
  }
  ASSERT_TRUE(db->Compact().ok());
  auto count = db->QueryCount(
      "SELECT ?s ?o WHERE { ?s <http://e.org/p0> ?o }");
  ASSERT_TRUE(count.ok());
  EXPECT_GT(count.value(), 0u);

  const obs::MetricsRegistry& metrics = db->metrics();
#ifndef SEDGE_OBS_DISABLED
  const obs::Histogram* wal_sync = metrics.FindHistogram("wal_sync_seconds");
  ASSERT_NE(wal_sync, nullptr);
  EXPECT_GT(wal_sync->count(), 0u);
  EXPECT_GT(wal_sync->Percentile(99), 0.0);
  const obs::Histogram* fold =
      metrics.FindHistogram("compaction_fold_seconds");
  ASSERT_NE(fold, nullptr);
  EXPECT_GT(fold->count(), 0u);
  const obs::Histogram* extent = metrics.FindHistogram(
      "checkpoint_phase_seconds", "phase=\"extent_write\"");
  const obs::Histogram* flip = metrics.FindHistogram(
      "checkpoint_phase_seconds", "phase=\"superblock_flip\"");
  ASSERT_NE(extent, nullptr);
  ASSERT_NE(flip, nullptr);
  EXPECT_GT(extent->count(), 0u);
  EXPECT_GT(flip->count(), 0u);
#endif
  // Counters stay live in both build flavours.
  const obs::Counter* syncs = metrics.FindCounter("wal_syncs_total");
  ASSERT_NE(syncs, nullptr);
  EXPECT_GT(syncs->value(), 0u);
  EXPECT_GT(metrics.FindCounter("compactions_total")->value(), 0u);
  EXPECT_GT(metrics.FindCounter("checkpoints_total")->value(), 0u);
  EXPECT_GT(metrics.FindCounter("queries_total")->value(), 0u);
  EXPECT_GT(metrics.FindCounter("block_device_writes_total")->value(), 0u);

  // The acceptance series are present in the Prometheus exposition.
  const std::string prom = metrics.ExportPrometheus();
  EXPECT_NE(prom.find("wal_sync_seconds"), std::string::npos);
  EXPECT_NE(prom.find("checkpoint_phase_seconds"), std::string::npos);
  EXPECT_NE(prom.find("compaction_fold_seconds"), std::string::npos);
#ifndef SEDGE_OBS_DISABLED
  EXPECT_NE(prom.find("wal_sync_seconds_bucket"), std::string::npos);
#endif
  const std::string json = metrics.ExportJson();
  JsonValidator validator(json);
  EXPECT_TRUE(validator.Valid());

  // Gauges track the folded state: overlay drained, base populated.
  EXPECT_EQ(metrics.FindGauge("delta_overlay_entries")->value(), 0.0);
  EXPECT_GT(metrics.FindGauge("base_triples")->value(), 0.0);
}

TEST(EngineMetrics, QueryStatsRideTheRegistry) {
  Database db;
  rdf::Graph g;
  for (int s = 0; s < 4; ++s) {
    for (int p = 0; p < 3; ++p) {
      g.Add(rdf::Term::Iri("http://e.org/s" + std::to_string(s)),
            rdf::Term::Iri("http://e.org/p" + std::to_string(p)),
            rdf::Term::Iri("http://e.org/o" + std::to_string(s * 3 + p)));
    }
  }
  ASSERT_TRUE(db.LoadData(g).ok());
  ASSERT_TRUE(db.QueryCount("SELECT ?s ?a ?b WHERE { ?s "
                            "<http://e.org/p0> ?a . ?s "
                            "<http://e.org/p1> ?b }")
                  .ok());
  const auto stats = db.query_stats();
  EXPECT_GT(stats.merge_join_extends + stats.row_extends, 0u);
  EXPECT_EQ(
      stats.merge_join_extends,
      db.metrics().FindCounter("query_merge_join_extends_total")->value());
  db.reset_query_stats();
  EXPECT_EQ(db.query_stats().merge_join_extends, 0u);
  EXPECT_EQ(db.query_stats().row_extends, 0u);
}

}  // namespace
}  // namespace sedge
