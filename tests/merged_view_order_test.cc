// Merged-view ordering property test. The delta-aware merge join sweeps
// the merged views positionally, so their output order is load-bearing:
// after any interleaving of inserts and removes, every view must still
// emit in strict base order — subjects ascending within a predicate,
// objects/literals ascending within a (p, s) pair, concepts ascending per
// subject — with tombstoned base triples skipped and delta adds
// interleaved (not appended). The RunCursor surfaces must agree with the
// corresponding per-subject scans.

#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "rdf/vocabulary.h"
#include "store/delta/delta_overlay.h"
#include "store/delta/merged_view.h"
#include "util/rng.h"

namespace sedge {
namespace {

constexpr int kObjectPreds = 3;
constexpr int kDatatypePreds = 2;
constexpr int kConcepts = 3;

std::string Iri(const std::string& kind, uint64_t i) {
  return "http://e.org/" + kind + std::to_string(i);
}

rdf::Triple Obj(uint64_t s, uint64_t p, uint64_t o) {
  return {rdf::Term::Iri(Iri("s", s)), rdf::Term::Iri(Iri("p", p)),
          rdf::Term::Iri(Iri("o", o))};
}
rdf::Triple Dt(uint64_t s, uint64_t p, const std::string& value) {
  return {rdf::Term::Iri(Iri("s", s)), rdf::Term::Iri(Iri("dp", p)),
          rdf::Term::Literal(value)};
}
rdf::Triple Typ(uint64_t s, uint64_t c) {
  return {rdf::Term::Iri(Iri("s", s)), rdf::Term::Iri(rdf::kRdfType),
          rdf::Term::Iri(Iri("C", c))};
}

// Seed mentioning every predicate/class (LiteMat ids are fixed at build
// time) plus some bulk so base runs are non-trivial.
rdf::Graph SeedGraph(Rng& rng) {
  rdf::Graph g;
  for (uint64_t p = 0; p < kObjectPreds; ++p) g.Add(Obj(0, p, 20));
  for (uint64_t p = 0; p < kDatatypePreds; ++p) g.Add(Dt(0, p, "0"));
  for (uint64_t c = 0; c < kConcepts; ++c) g.Add(Typ(0, c));
  for (int i = 0; i < 120; ++i) {
    const uint64_t kind = rng.Uniform(4);
    const uint64_t s = rng.Uniform(16);
    if (kind == 0) {
      g.Add(Typ(s, rng.Uniform(kConcepts)));
    } else if (kind == 1) {
      g.Add(Dt(s, rng.Uniform(kDatatypePreds),
               std::to_string(rng.Uniform(9))));
    } else {
      g.Add(Obj(s, rng.Uniform(kObjectPreds), 20 + rng.Uniform(10)));
    }
  }
  return g;
}

/// (subject, object) pairs of one predicate via the merged full scan.
std::vector<std::pair<uint64_t, uint64_t>> CollectScanP(
    const store::delta::MergedObjectView& view, uint64_t p) {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  view.ScanP(p, [&](uint64_t s, uint64_t o) {
    out.push_back({s, o});
    return true;
  });
  return out;
}

class MergedViewOrder : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MergedViewOrder, StrictBaseOrderSurvivesInterleavedWrites) {
  Rng rng(GetParam());
  Database db;
  ASSERT_TRUE(db.LoadData(SeedGraph(rng)).ok());
  db.set_reasoning(false);
  db.set_compaction_ratio(0);  // keep the delta live

  // Interleaved writes: inserts of fresh subjects (delta-only runs),
  // inserts overlapping base subjects, and removes (base tombstones and
  // add retractions alike).
  for (int step = 0; step < 300; ++step) {
    const uint64_t kind = rng.Uniform(4);
    const uint64_t s = rng.Uniform(24);  // 16..23 are delta-only subjects
    rdf::Triple t;
    if (kind == 0) {
      t = Typ(s, rng.Uniform(kConcepts));
    } else if (kind == 1) {
      t = Dt(s, rng.Uniform(kDatatypePreds), std::to_string(rng.Uniform(9)));
    } else {
      t = Obj(s, rng.Uniform(kObjectPreds), 20 + rng.Uniform(10));
    }
    if (rng.Bernoulli(0.65)) {
      ASSERT_TRUE(db.Insert(t).ok());
    } else {
      ASSERT_TRUE(db.Remove(t).ok());
    }
  }
  ASSERT_TRUE(db.store().has_delta()) << "writes should leave a live delta";

  const store::TripleStore& st = db.store();
  const auto& dict = st.dict();

  // -- Object view: ScanP strictly (s, o)-ascending; cursor agrees with
  //    ScanSP per subject and its objects ascend.
  for (uint64_t p = 0; p < kObjectPreds; ++p) {
    const auto pid = dict.ObjectPropertyId(Iri("p", p));
    ASSERT_TRUE(pid.has_value());
    const store::delta::MergedObjectView view = st.object_view();
    const auto pairs = CollectScanP(view, *pid);
    for (size_t i = 1; i < pairs.size(); ++i) {
      ASSERT_LT(pairs[i - 1], pairs[i])
          << "object run not strictly (s, o)-ascending at " << i;
    }

    std::vector<uint64_t> subjects;
    for (const auto& [s, o] : pairs) {
      if (subjects.empty() || subjects.back() != s) subjects.push_back(s);
    }
    auto cursor = view.OpenRun(*pid);
    ASSERT_TRUE(pairs.empty() || cursor.valid());
    size_t at = 0;
    for (const uint64_t s : subjects) {
      cursor.Seek(s);
      ASSERT_TRUE(cursor.has_current());
      std::vector<uint64_t> via_cursor;
      cursor.ForEachObject([&](uint64_t o) {
        via_cursor.push_back(o);
        return true;
      });
      std::vector<uint64_t> via_scan;
      view.ScanSP(*pid, s, [&](uint64_t, uint64_t o) {
        via_scan.push_back(o);
        return true;
      });
      ASSERT_EQ(via_cursor, via_scan) << "p" << p << " s" << s;
      for (const uint64_t o : via_cursor) {
        ASSERT_EQ(o, pairs[at].second);
        ASSERT_TRUE(cursor.ContainsObject(o));
        ++at;
      }
      ASSERT_FALSE(cursor.ContainsObject(1000));  // never stored
    }
    ASSERT_EQ(at, pairs.size());
  }

  // -- Datatype view: ScanP subject-ascending, literals strictly
  //    term-ascending within a subject (delta positions interleaved, not
  //    appended); cursor agrees with ScanSP.
  for (uint64_t p = 0; p < kDatatypePreds; ++p) {
    const auto pid = dict.DatatypePropertyId(Iri("dp", p));
    ASSERT_TRUE(pid.has_value());
    const store::delta::MergedDatatypeView view = st.datatype_view();
    std::vector<std::pair<uint64_t, uint64_t>> positions;  // (s, pos)
    view.ScanP(*pid, [&](uint64_t s, uint64_t pos) {
      positions.push_back({s, pos});
      return true;
    });
    for (size_t i = 1; i < positions.size(); ++i) {
      const auto& [ps, ppos] = positions[i - 1];
      const auto& [cs, cpos] = positions[i];
      ASSERT_LE(ps, cs) << "datatype run subjects not ascending at " << i;
      if (ps == cs) {
        ASSERT_LT(view.LiteralAt(ppos), view.LiteralAt(cpos))
            << "literals not strictly ascending within subject " << cs;
      }
    }

    std::vector<uint64_t> subjects;
    for (const auto& [s, pos] : positions) {
      if (subjects.empty() || subjects.back() != s) subjects.push_back(s);
    }
    auto cursor = view.OpenRun(*pid);
    size_t at = 0;
    for (const uint64_t s : subjects) {
      cursor.Seek(s);
      ASSERT_TRUE(cursor.has_current());
      std::vector<uint64_t> via_cursor;
      cursor.ForEachLiteral([&](uint64_t pos) {
        via_cursor.push_back(pos);
        return true;
      });
      std::vector<uint64_t> via_scan;
      view.ScanSP(*pid, s, [&](uint64_t, uint64_t pos) {
        via_scan.push_back(pos);
        return true;
      });
      ASSERT_EQ(via_cursor, via_scan) << "dp" << p << " s" << s;
      for (const uint64_t pos : via_cursor) {
        ASSERT_EQ(pos, positions[at].second);
        ++at;
      }
    }
    ASSERT_EQ(at, positions.size());
  }

  // -- Type view: concepts ascending per subject, subjects ascending per
  //    concept.
  const store::delta::MergedTypeView types = st.type_view();
  for (uint64_t s = 0; s < 64; ++s) {
    std::optional<uint64_t> prev;
    types.ForEachConceptOf(s, [&](uint64_t c) {
      if (prev) ASSERT_LT(*prev, c) << "concepts of s" << s;
      prev = c;
    });
  }
  for (uint64_t c = 0; c < kConcepts; ++c) {
    const auto cid = dict.ConceptId(Iri("C", c));
    ASSERT_TRUE(cid.has_value());
    std::optional<uint64_t> prev;
    types.ForEachSubjectOf(*cid, [&](uint64_t s) {
      if (prev) ASSERT_LT(*prev, s) << "subjects of C" << c;
      prev = s;
    });
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInterleavings, MergedViewOrder,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace sedge
