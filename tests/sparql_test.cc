// Tests for the SPARQL layer: parser, query graph, optimizer (Algorithm 1),
// expression evaluation, and the executor end-to-end through sedge::Database.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "rdf/vocabulary.h"
#include "sparql/optimizer.h"
#include "sparql/query_graph.h"
#include "sparql/sparql_parser.h"

namespace sedge::sparql {
namespace {

// ------------------------------------------------------------------ parser

TEST(SparqlParser, ParsesSimpleSelect) {
  const auto q = ParseQuery(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x ?y WHERE { ?x ex:p ?y . ?x a ex:C }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().select.size(), 2u);
  ASSERT_EQ(q.value().where.triples.size(), 2u);
  EXPECT_TRUE(IsVar(q.value().where.triples[0].subject));
  EXPECT_EQ(AsTerm(q.value().where.triples[1].predicate).lexical(),
            rdf::kRdfType);
  EXPECT_EQ(AsTerm(q.value().where.triples[1].object).lexical(),
            "http://e.org/C");
}

TEST(SparqlParser, ParsesSemicolonAndCommaAbbreviations) {
  const auto q = ParseQuery(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT * WHERE { ?x a ex:C ; ex:p ?y, ?z ; ex:q \"v\" . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q.value().where.triples.size(), 4u);
  // All four share the subject ?x.
  for (const auto& tp : q.value().where.triples) {
    EXPECT_EQ(AsVar(tp.subject).name, "x");
  }
}

TEST(SparqlParser, ParsesFilterExpressions) {
  const auto q = ParseQuery(
      "SELECT ?v WHERE { ?s <http://e.org/value> ?v . "
      "FILTER (?v < 3.00 || ?v > 4.50) }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q.value().where.filters.size(), 1u);
  EXPECT_EQ(q.value().where.filters[0]->kind, ExprKind::kOr);
}

TEST(SparqlParser, ParsesBindWithFunctions) {
  const auto q = ParseQuery(
      "SELECT ?newV WHERE { ?s <http://e.org/v> ?v . "
      "BIND(if(regex(str(?u), \"BAR\"), ?v, ?v/1000) AS ?newV) }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q.value().where.binds.size(), 1u);
  EXPECT_EQ(q.value().where.binds[0].var.name, "newV");
  EXPECT_EQ(q.value().where.binds[0].expr->function, "if");
}

TEST(SparqlParser, ParsesUnion) {
  const auto q = ParseQuery(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT ?x WHERE { { ?x a ex:A } UNION { ?x a ex:B } UNION "
      "{ ?x a ex:C } }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q.value().where.unions.size(), 1u);
  EXPECT_EQ(q.value().where.unions[0].alternatives.size(), 3u);
}

TEST(SparqlParser, ParsesDistinctAndLimit) {
  const auto q = ParseQuery(
      "SELECT DISTINCT ?x WHERE { ?x ?p ?o } LIMIT 10 OFFSET 5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q.value().distinct);
  EXPECT_EQ(q.value().limit, 10u);
  EXPECT_EQ(q.value().offset, 5u);
}

TEST(SparqlParser, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseQuery("SELECT WHERE { ?x ?p ?o }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x { ?x ex:p ?y }").ok());  // no prefix
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x <p> }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x <p> ?y ").ok());
}

// ------------------------------------------------------------- query graph

TEST(QueryGraph, LabelsJoinTypes) {
  const auto q = ParseQuery(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT * WHERE { ?x ex:p ?y . ?x a ex:C . ?z ex:q ?x }");
  ASSERT_TRUE(q.ok());
  const QueryGraph g(q.value().where.triples);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_FALSE(g.IsTypeNode(0));
  EXPECT_TRUE(g.IsTypeNode(1));
  EXPECT_TRUE(g.Connected(0, 1));
  EXPECT_TRUE(g.Connected(0, 2));
  EXPECT_TRUE(g.Connected(1, 2));
  // Edge 0-1 on ?x: subject-subject.
  for (const auto& e : g.edges()) {
    if (e.a == 0 && e.b == 1) EXPECT_EQ(e.type(), JoinType::kSS);
    if (e.a == 0 && e.b == 2) EXPECT_EQ(e.type(), JoinType::kSO);
  }
}

// --------------------------------------------------------------- optimizer

TEST(Optimizer, HeuristicClassOrder) {
  const auto q = ParseQuery(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT * WHERE { "
      "  <http://e/a> a ex:C ."        // (s, type, o)   -> 0
      "  <http://e/a> a ?c ."          // (s, type, ?o)  -> 1
      "  ?x a ex:C ."                  // (?s, type, o)  -> 2
      "  <http://e/a> ex:p ?y ."       // (s, p, ?o)     -> 4
      "  ?x ex:p <http://e/b> ."       // (?s, p, o)     -> 5
      "  ?x ex:p ?y ."                 // (?s, p, ?o)    -> 6
      "  ?x ?p ?y ."                   // var predicate  -> 7
      "}");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const auto& tps = q.value().where.triples;
  EXPECT_EQ(HeuristicClass(tps[0]), 0);
  EXPECT_EQ(HeuristicClass(tps[1]), 1);
  EXPECT_EQ(HeuristicClass(tps[2]), 2);
  EXPECT_EQ(HeuristicClass(tps[3]), 4);
  EXPECT_EQ(HeuristicClass(tps[4]), 5);
  EXPECT_EQ(HeuristicClass(tps[5]), 6);
  EXPECT_EQ(HeuristicClass(tps[6]), 7);
}

namespace {
class FixedEstimator : public CardinalityEstimator {
 public:
  explicit FixedEstimator(std::vector<uint64_t> costs)
      : costs_(std::move(costs)) {}
  uint64_t Estimate(const TriplePattern& tp) const override {
    // Keyed by the object constant's local name when present, else 100.
    (void)tp;
    return next_ < costs_.size() ? costs_[next_++] : 100;
  }

 private:
  std::vector<uint64_t> costs_;
  mutable size_t next_ = 0;
};
}  // namespace

TEST(Optimizer, StartsWithSsJoinedTypePattern) {
  // Figure 6-style query: type TPs ?x a C1, ?x a C2 (SS-joined via ?x),
  // plus object TPs. The order must start with a type TP.
  const auto q = ParseQuery(
      "PREFIX ex: <http://e.org/>\n"
      "SELECT * WHERE { ?x ex:p ?y . ?x a ex:C1 . ?y a ex:C2 . "
      "?x ex:q ?z }");
  ASSERT_TRUE(q.ok());
  const FixedEstimator est({100, 5, 7, 100});
  const auto order = OrderTriplePatterns(q.value().where.triples, est);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1u);  // ?x a ex:C1 (cheapest SS-joined type TP)
  // Left-deep: every subsequent TP connects to the prefix.
  const QueryGraph g(q.value().where.triples);
  for (size_t i = 1; i < order.size(); ++i) {
    bool connected = false;
    for (size_t j = 0; j < i; ++j) {
      if (g.Connected(order[i], order[j])) connected = true;
    }
    EXPECT_TRUE(connected) << "pattern " << order[i] << " disconnected";
  }
}

// ------------------------------------------------- end-to-end (Database)

const char kOntology[] = R"(
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .
@prefix ex: <http://example.org/> .
ex:Person a owl:Class .
ex:Student rdfs:subClassOf ex:Person .
ex:GradStudent rdfs:subClassOf ex:Student .
ex:Professor rdfs:subClassOf ex:Person .
ex:Course a owl:Class .
ex:memberOf a owl:ObjectProperty .
ex:worksFor rdfs:subPropertyOf ex:memberOf .
ex:headOf rdfs:subPropertyOf ex:worksFor .
ex:takes a owl:ObjectProperty .
ex:advisor a owl:ObjectProperty .
ex:age a owl:DatatypeProperty .
ex:name a owl:DatatypeProperty .
)";

const char kData[] = R"(
@prefix ex: <http://example.org/> .
ex:alice a ex:GradStudent ; ex:takes ex:c1, ex:c2 ; ex:age 27 ;
  ex:name "Alice" ; ex:advisor ex:dana ; ex:memberOf ex:dept1 .
ex:bob a ex:Student ; ex:takes ex:c1 ; ex:age 21 ; ex:name "Bob" ;
  ex:memberOf ex:dept1 .
ex:carol a ex:Professor ; ex:worksFor ex:dept1 ; ex:age 47 ;
  ex:name "Carol" .
ex:dana a ex:Professor ; ex:headOf ex:dept2 ; ex:age 52 ; ex:name "Dana" .
ex:c1 a ex:Course .
ex:c2 a ex:Course .
)";

class EndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.LoadOntologyTurtle(kOntology).ok());
    ASSERT_TRUE(db_.LoadDataTurtle(kData).ok());
  }

  std::set<std::string> Column(const QueryResult& r, size_t col) {
    std::set<std::string> out;
    for (const auto& row : r.rows) {
      out.insert(row[col] ? row[col]->lexical() : "UNDEF");
    }
    return out;
  }

  Database db_;
};

TEST_F(EndToEnd, SingleTpObjectProperty) {
  const auto r = db_.Query(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?c WHERE { ex:alice ex:takes ?c }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Column(r.value(), 0),
            (std::set<std::string>{"http://example.org/c1",
                                   "http://example.org/c2"}));
}

TEST_F(EndToEnd, SingleTpReverse) {
  const auto r = db_.Query(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?s WHERE { ?s ex:takes ex:c1 }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Column(r.value(), 0),
            (std::set<std::string>{"http://example.org/alice",
                                   "http://example.org/bob"}));
}

TEST_F(EndToEnd, TypeQueryWithoutReasoningIsExact) {
  db_.set_reasoning(false);
  const auto r = db_.Query(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?s WHERE { ?s a ex:Student }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Column(r.value(), 0),
            (std::set<std::string>{"http://example.org/bob"}));
}

TEST_F(EndToEnd, TypeQueryWithReasoningUsesInterval) {
  const auto r = db_.Query(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?s WHERE { ?s a ex:Student }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Student ⊒ GradStudent: alice (grad) and bob (student).
  EXPECT_EQ(Column(r.value(), 0),
            (std::set<std::string>{"http://example.org/alice",
                                   "http://example.org/bob"}));
  // Person catches everyone.
  const auto all = db_.Query(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?s WHERE { ?s a ex:Person }");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), 4u);
}

TEST_F(EndToEnd, PropertyHierarchyReasoning) {
  // memberOf ⊒ worksFor ⊒ headOf: all four individuals have a membership.
  const auto r = db_.Query(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?s ?d WHERE { ?s ex:memberOf ?d }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 4u);
  db_.set_reasoning(false);
  const auto exact = db_.Query(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?s ?d WHERE { ?s ex:memberOf ?d }");
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact.value().size(), 2u);  // only the explicit memberOf edges
}

TEST_F(EndToEnd, StarJoinWithMergePath) {
  const auto query =
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?s ?c ?a WHERE { ?s a ex:Student . ?s ex:takes ?c . "
      "?s ex:age ?a }";
  const auto merged = db_.Query(query);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  // alice takes 2 courses, bob 1 -> 3 rows.
  EXPECT_EQ(merged.value().size(), 3u);
  db_.set_merge_join(false);
  const auto nested = db_.Query(query);
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(nested.value().size(), 3u);
}

TEST_F(EndToEnd, PathJoinAcrossSubjectObject) {
  const auto r = db_.Query(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?s ?prof ?d WHERE { ?s ex:advisor ?prof . "
      "?prof ex:worksFor ?d }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // dana headOf dept2; worksFor ⊒ headOf, so reasoning finds it.
  ASSERT_EQ(r.value().size(), 1u);
  EXPECT_EQ(r.value().rows[0][2]->lexical(), "http://example.org/dept2");
}

TEST_F(EndToEnd, FilterOnNumericLiteral) {
  const auto r = db_.Query(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?s WHERE { ?s ex:age ?a . FILTER (?a > 25 && ?a < 50) }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Column(r.value(), 0),
            (std::set<std::string>{"http://example.org/alice",
                                   "http://example.org/carol"}));
}

TEST_F(EndToEnd, FilterWithRegexAndStr) {
  const auto r = db_.Query(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?s WHERE { ?s ex:name ?n . FILTER regex(str(?n), \"^[AB]\") }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 2u);  // Alice, Bob
}

TEST_F(EndToEnd, BindComputesDerivedValues) {
  const auto r = db_.Query(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?s ?half WHERE { ?s ex:age ?a . BIND(?a / 2 AS ?half) "
      "FILTER (?half > 20) }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // carol (23.5) and dana (26).
  EXPECT_EQ(r.value().size(), 2u);
}

TEST_F(EndToEnd, BindWithIfAndRegex) {
  // The motivating example's unit-conversion shape (Section 2).
  const auto r = db_.Query(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?s ?v WHERE { ?s ex:age ?a . "
      "BIND(if(regex(str(?s), \"alice\"), ?a, ?a * 10) AS ?v) }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  double alice_v = 0.0;
  double bob_v = 0.0;
  for (const auto& row : r.value().rows) {
    if (row[0]->lexical() == "http://example.org/alice") {
      alice_v = row[1]->AsDouble();
    }
    if (row[0]->lexical() == "http://example.org/bob") {
      bob_v = row[1]->AsDouble();
    }
  }
  EXPECT_DOUBLE_EQ(alice_v, 27.0);
  EXPECT_DOUBLE_EQ(bob_v, 210.0);
}

TEST_F(EndToEnd, UnionCombinesAlternatives) {
  db_.set_reasoning(false);  // make the union do the work
  const auto r = db_.Query(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?s WHERE { { ?s a ex:Student } UNION { ?s a ex:GradStudent } "
      "UNION { ?s a ex:Professor } }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 4u);
}

TEST_F(EndToEnd, UnionJoinsWithOuterPatterns) {
  db_.set_reasoning(false);
  const auto r = db_.Query(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?s ?c WHERE { ?s ex:takes ?c . "
      "{ ?s a ex:Student } UNION { ?s a ex:GradStudent } }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 3u);  // alice x2 + bob x1
}

TEST_F(EndToEnd, DistinctAndLimit) {
  const auto r = db_.Query(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT DISTINCT ?d WHERE { ?s ex:memberOf ?d }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 2u);  // dept1, dept2
  const auto limited = db_.Query(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?s WHERE { ?s a ex:Person } LIMIT 2");
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited.value().size(), 2u);
}

TEST_F(EndToEnd, SelectStarAndVarPredicate) {
  const auto r = db_.Query(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT * WHERE { ex:alice ?p ?o }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // alice: 1 type + 2 takes + 1 age + 1 name + 1 advisor + 1 memberOf = 7.
  EXPECT_EQ(r.value().size(), 7u);
  // One binding must be the rdf:type predicate.
  bool has_type = false;
  for (const auto& row : r.value().rows) {
    if (row[0] && row[0]->lexical() == rdf::kRdfType) has_type = true;
  }
  EXPECT_TRUE(has_type);
}

TEST_F(EndToEnd, ConstantSubjectTypeCheck) {
  const auto yes = db_.Query(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT * WHERE { ex:alice a ex:Person }");
  ASSERT_TRUE(yes.ok());
  EXPECT_EQ(yes.value().size(), 1u);  // entailed via GradStudent ⊑ ... Person
  db_.set_reasoning(false);
  const auto no = db_.Query(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT * WHERE { ex:alice a ex:Person }");
  ASSERT_TRUE(no.ok());
  EXPECT_EQ(no.value().size(), 0u);
}

TEST_F(EndToEnd, EmptyResultsAreWellFormed) {
  const auto r = db_.Query(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?s WHERE { ?s ex:takes ex:nonexistent }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 0u);
  ASSERT_EQ(r.value().var_names.size(), 1u);
}

TEST_F(EndToEnd, QueryCountMatchesDecodedSize) {
  const auto count = db_.QueryCount(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?s WHERE { ?s a ex:Person }");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 4u);
}

TEST_F(EndToEnd, OptimizerOffStillCorrect) {
  db_.set_optimizer(false);
  const auto r = db_.Query(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?s ?c ?a WHERE { ?s a ex:Student . ?s ex:takes ?c . "
      "?s ex:age ?a }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 3u);
}

// The paper's motivating anomaly-detection query (Section 2), on a
// miniature two-station SOSA/QUDT graph with heterogeneous annotations.
TEST(MotivatingExample, PressureAnomalyAcrossHeterogeneousStations) {
  Database db;
  ASSERT_TRUE(db.LoadOntologyTurtle(R"(
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .
@prefix qudt: <http://qudt.org/schema/qudt/> .
qudt:MechanicsUnit a owl:Class .
qudt:PressureUnit rdfs:subClassOf qudt:MechanicsUnit .
qudt:Pressure rdfs:subClassOf qudt:PressureUnit .
qudt:PressureOrStressUnit rdfs:subClassOf qudt:PressureUnit .
)").ok());
  ASSERT_TRUE(db.LoadDataTurtle(R"(
@prefix sosa: <http://www.w3.org/ns/sosa/> .
@prefix qudt: <http://qudt.org/schema/qudt/> .
@prefix ex: <http://engie.example/> .
@prefix unit: <http://qudt.org/vocab/unit/> .
ex:station1 a sosa:Platform ; sosa:hosts ex:sensor1 .
ex:sensor1 a sosa:Sensor ; sosa:observes ex:obs1 .
ex:obs1 a sosa:Observation ; sosa:hasResult ex:res1 ;
  sosa:resultTime "2020-12-01T10:00:00" .
ex:res1 a sosa:Result ; qudt:numericValue 5.20 ; qudt:unit unit:BAR .
unit:BAR a qudt:PressureOrStressUnit .
ex:station2 a sosa:Platform ; sosa:hosts ex:sensor2 .
ex:sensor2 a sosa:Sensor ; sosa:observes ex:obs2 .
ex:obs2 a sosa:Observation ; sosa:hasResult ex:res2 ;
  sosa:resultTime "2020-12-01T10:00:00" .
ex:res2 a sosa:Result ; qudt:numericValue 3800 ; qudt:unit unit:HectoPA .
unit:HectoPA a qudt:Pressure .
ex:station3 a sosa:Platform ; sosa:hosts ex:sensor3 .
ex:sensor3 a sosa:Sensor ; sosa:observes ex:obs3 .
ex:obs3 a sosa:Observation ; sosa:hasResult ex:res3 ;
  sosa:resultTime "2020-12-01T10:00:00" .
ex:res3 a sosa:Result ; qudt:numericValue 4.10 ; qudt:unit unit:BAR .
)").ok());

  // Station1 reads 5.20 Bar (anomalous), station2 3800 hPa = 3.8 Bar (OK),
  // station3 4.10 Bar (OK). One query covers both annotations and units
  // thanks to qudt:PressureUnit reasoning + BIND conversion.
  const auto r = db.Query(R"(
PREFIX sosa: <http://www.w3.org/ns/sosa/>
PREFIX qudt: <http://qudt.org/schema/qudt/>
SELECT ?x ?s ?ts ?v1 WHERE {
  ?x a sosa:Platform ; sosa:hosts ?s .
  ?s sosa:observes ?o ; a sosa:Sensor .
  ?o sosa:hasResult ?y ; a sosa:Observation ; sosa:resultTime ?ts .
  ?y a sosa:Result ; qudt:numericValue ?v1 ; qudt:unit ?u1 .
  ?u1 a qudt:PressureUnit .
  FILTER (?newV < 3.00 || ?newV > 4.50)
  BIND(if(regex(str(?u1), "http://qudt.org/vocab/unit/BAR"), ?v1,
       if(regex(str(?u1), "http://qudt.org/vocab/unit/HectoPA"),
          ?v1/1000, 0)) AS ?newV)
})");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().size(), 1u);
  EXPECT_EQ(r.value().rows[0][0]->lexical(), "http://engie.example/station1");
  EXPECT_DOUBLE_EQ(r.value().rows[0][3]->AsDouble(), 5.20);
}

}  // namespace
}  // namespace sedge::sparql
