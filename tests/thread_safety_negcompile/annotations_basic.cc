// Negative-compilation probe: the annotation layer itself.
//
// A minimal struct with one SEDGE_GUARDED_BY field — if Clang's
// -Wthread-safety rejects the unguarded write below, the macro layer in
// util/thread_annotations.h is actually expanding to live attributes
// (and not silently no-op'ing, which would green-light every other
// probe for the wrong reason).
//
// MUST NOT COMPILE under Clang with -Werror=thread-safety.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

struct Guarded {
  sedge::util::Mutex mu;
  int value SEDGE_GUARDED_BY(mu) = 0;
};

int WriteWithoutLock(Guarded& g) {
  g.value = 42;  // guarded-by violation: mu is not held
  return g.value;
}

}  // namespace

int main() {
  Guarded g;
  return WriteWithoutLock(g);
}
