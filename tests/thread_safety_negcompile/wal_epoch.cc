// Negative-compilation probe: WAL epoch fence.
//
// The WriteAheadLog has no lock of its own (see the concurrency
// contract in io/wal.h); "the epoch fence only advances under the
// writer lock" is enforced structurally by PT_GUARDED_BY(write_mu_) on
// Database::wal_ — dereferencing the pointer without write_mu_ must be
// rejected, which is what makes the contract compile-time-checked
// rather than a comment.
//
// MUST NOT COMPILE under Clang with -Werror=thread-safety.

#include "core/database.h"
#include "io/wal.h"

namespace sedge {

class ThreadSafetyProbe {
 public:
  static uint64_t ReadWalEpochWithoutLock(Database& db) {
    // Two violations in one statement: reading the guarded pointer
    // field, then dereferencing the pt-guarded pointee.
    return db.wal_->epoch();
  }
};

}  // namespace sedge

int main() {
  sedge::Database db;
  return static_cast<int>(sedge::ThreadSafetyProbe::ReadWalEpochWithoutLock(db));
}
