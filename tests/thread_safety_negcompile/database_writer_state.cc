// Negative-compilation probe: Database writer state.
//
// store_epoch_ is the writer-lane fork/swap epoch; it is read by
// FinishCompaction to detect that a synchronous swap raced the
// background fold, so an unguarded access is exactly the class of bug
// the annotations exist to reject. ThreadSafetyProbe is befriended by
// Database solely so these probes can name private fields.
//
// MUST NOT COMPILE under Clang with -Werror=thread-safety.

#include "core/database.h"

namespace sedge {

class ThreadSafetyProbe {
 public:
  static uint64_t ReadEpochWithoutLock(Database& db) {
    return db.store_epoch_;  // guarded-by violation: write_mu_ not held
  }
};

}  // namespace sedge

int main() {
  sedge::Database db;
  return static_cast<int>(sedge::ThreadSafetyProbe::ReadEpochWithoutLock(db));
}
