// Negative-compilation probe: serve admission queue.
//
// queue_ is pushed by arbitrary client threads in Submit() and popped
// by the reader pool in WorkerLoop(); reading its size without mu_ is
// the textbook race the admission path had to be written around.
//
// MUST NOT COMPILE under Clang with -Werror=thread-safety.

#include "serve/query_service.h"

namespace sedge {

class ThreadSafetyProbe {
 public:
  static size_t ReadQueueWithoutLock(serve::QueryService& svc) {
    return svc.queue_.size();  // guarded-by violation: mu_ not held
  }
};

}  // namespace sedge

int main() {
  sedge::Database db;
  sedge::serve::QueryService svc(&db);
  return static_cast<int>(sedge::ThreadSafetyProbe::ReadQueueWithoutLock(svc));
}
