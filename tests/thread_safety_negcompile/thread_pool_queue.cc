// Negative-compilation probe: the build pool's task queue.
//
// ThreadPool::queue_ is SEDGE_GUARDED_BY(mu_) — the pool is shared by
// the synchronous compaction path and the async fold worker, so every
// producer must go through Submit(), which takes the leaf lock. This
// probe reaches the queue through the ThreadSafetyProbe friend without
// holding mu_, which -Wthread-safety must reject.
//
// MUST NOT COMPILE under Clang with -Werror=thread-safety.

#include "util/thread_pool.h"

namespace sedge {

class ThreadSafetyProbe {
 public:
  static size_t UnguardedQueueDepth(util::ThreadPool& pool) {
    return pool.queue_.size();  // guarded-by violation: mu_ is not held
  }
};

}  // namespace sedge

int main() {
  sedge::util::ThreadPool pool(1);
  return static_cast<int>(sedge::ThreadSafetyProbe::UnguardedQueueDepth(pool));
}
