// Positive control for the negative-compilation harness.
//
// Identical shape to the three violation probes, but with the locks
// held correctly — this TU MUST compile cleanly under the exact flags
// that reject the others. If this one ever fails, the harness is
// broken (wrong include path, over-eager flags), not the engine, and
// the "rejected" results of the sibling tests mean nothing.

#include "core/database.h"
#include "io/wal.h"
#include "serve/query_service.h"

namespace sedge {

class ThreadSafetyProbe {
 public:
  static uint64_t ReadEpochLocked(Database& db) {
    util::MutexLock lk(&db.write_mu_);
    return db.store_epoch_;
  }

  static size_t ReadQueueLocked(serve::QueryService& svc) {
    util::MutexLock lk(&svc.mu_);
    return svc.queue_.size();
  }

  static uint64_t ReadWalEpochLocked(Database& db) {
    util::MutexLock lk(&db.write_mu_);
    return db.wal_ != nullptr ? db.wal_->epoch() : 0;
  }
};

}  // namespace sedge

int main() {
  sedge::Database db;
  uint64_t acc = sedge::ThreadSafetyProbe::ReadEpochLocked(db);
  acc += sedge::ThreadSafetyProbe::ReadWalEpochLocked(db);
  {
    sedge::serve::QueryService svc(&db);
    acc += sedge::ThreadSafetyProbe::ReadQueueLocked(svc);
  }
  return static_cast<int>(acc);
}
