// Tests for the simulated block device, pager, and the disk-paged B+tree.

#include <algorithm>
#include <chrono>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "btree/b_plus_tree.h"
#include "io/block_device.h"
#include "util/rng.h"

namespace sedge {
namespace {

using btree::BPlusTree;
using btree::TripleKey;
using io::kBlockSize;
using io::Pager;
using io::SimulatedBlockDevice;

TEST(BlockDevice, ReadBackWrites) {
  SimulatedBlockDevice dev;
  const uint64_t b0 = dev.AllocateBlock();
  const uint64_t b1 = dev.AllocateBlock();
  EXPECT_EQ(b0, 0u);
  EXPECT_EQ(b1, 1u);
  std::vector<uint8_t> data(kBlockSize, 0xAB);
  dev.WriteBlock(b1, data.data());
  std::vector<uint8_t> out(kBlockSize, 0);
  dev.ReadBlock(b1, out.data());
  EXPECT_EQ(out, data);
  dev.ReadBlock(b0, out.data());
  EXPECT_EQ(out, std::vector<uint8_t>(kBlockSize, 0));  // fresh blocks zeroed
  EXPECT_EQ(dev.stats().reads, 2u);
  EXPECT_EQ(dev.stats().writes, 1u);
  EXPECT_EQ(dev.SizeInBytes(), 2 * kBlockSize);
}

TEST(Pager, CachesAndCountsHits) {
  SimulatedBlockDevice dev;
  Pager pager(&dev, /*capacity_pages=*/2);
  const uint64_t a = pager.AllocateBlock();
  const uint64_t b = pager.AllocateBlock();
  const uint64_t c = pager.AllocateBlock();
  pager.Fetch(a);
  pager.Fetch(a);
  EXPECT_EQ(pager.cache_hits(), 1u);
  EXPECT_EQ(pager.cache_misses(), 1u);
  pager.Fetch(b);
  pager.Fetch(c);  // evicts a (LRU)
  pager.Fetch(a);  // miss again
  EXPECT_EQ(pager.cache_misses(), 4u);
}

TEST(Pager, WritesBackDirtyFramesOnEviction) {
  SimulatedBlockDevice dev;
  Pager pager(&dev, /*capacity_pages=*/1);
  const uint64_t a = pager.AllocateBlock();
  const uint64_t b = pager.AllocateBlock();
  uint8_t* frame = pager.Fetch(a, /*will_write=*/true);
  frame[0] = 0x42;
  pager.Fetch(b);  // evicts dirty a
  std::vector<uint8_t> out(kBlockSize);
  dev.ReadBlock(a, out.data());
  EXPECT_EQ(out[0], 0x42);
}

TEST(Pager, FlushAllPersistsDirtyFrames) {
  SimulatedBlockDevice dev;
  Pager pager(&dev, 4);
  const uint64_t a = pager.AllocateBlock();
  pager.Fetch(a, /*will_write=*/true)[7] = 0x99;
  pager.FlushAll();
  std::vector<uint8_t> out(kBlockSize);
  dev.ReadBlock(a, out.data());
  EXPECT_EQ(out[7], 0x99);
}

TEST(BlockDevice, LatencyIsPaid) {
  SimulatedBlockDevice dev(/*read_latency_us=*/200.0);
  const uint64_t b = dev.AllocateBlock();
  std::vector<uint8_t> out(kBlockSize);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) dev.ReadBlock(b, out.data());
  const double elapsed_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed_us, 10 * 200.0 * 0.9);
}

// ------------------------------------------------------------------ B+tree

TripleKey MakeKey(uint32_t a, uint32_t b, uint32_t c) { return {a, b, c}; }

TEST(BPlusTree, InsertLookupSmall) {
  SimulatedBlockDevice dev;
  Pager pager(&dev, 16);
  BPlusTree tree(&pager);
  EXPECT_TRUE(tree.Insert(MakeKey(1, 2, 3)));
  EXPECT_FALSE(tree.Insert(MakeKey(1, 2, 3)));  // duplicate
  EXPECT_TRUE(tree.Insert(MakeKey(0, 0, 0)));
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_TRUE(tree.Contains(MakeKey(1, 2, 3)));
  EXPECT_FALSE(tree.Contains(MakeKey(1, 2, 4)));
}

class BPlusTreeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BPlusTreeProperty, MatchesStdSet) {
  const uint64_t n = GetParam();
  SimulatedBlockDevice dev;
  Pager pager(&dev, 8);  // tiny cache: exercises eviction during splits
  BPlusTree tree(&pager);
  std::set<std::tuple<uint32_t, uint32_t, uint32_t>> reference;
  Rng rng(n);
  for (uint64_t i = 0; i < n; ++i) {
    const uint32_t a = static_cast<uint32_t>(rng.Uniform(50));
    const uint32_t b = static_cast<uint32_t>(rng.Uniform(200));
    const uint32_t c = static_cast<uint32_t>(rng.Uniform(500));
    const bool added = reference.insert({a, b, c}).second;
    EXPECT_EQ(tree.Insert(MakeKey(a, b, c)), added);
  }
  ASSERT_EQ(tree.size(), reference.size());
  for (const auto& [a, b, c] : reference) {
    ASSERT_TRUE(tree.Contains(MakeKey(a, b, c)))
        << a << " " << b << " " << c;
  }
  // Full-range scan returns everything in lexicographic order.
  std::vector<std::tuple<uint32_t, uint32_t, uint32_t>> scanned;
  tree.RangeScan(MakeKey(0, 0, 0), MakeKey(~0u, ~0u, ~0u),
                 [&](const TripleKey& k) {
                   scanned.push_back({k.a, k.b, k.c});
                   return true;
                 });
  std::vector<std::tuple<uint32_t, uint32_t, uint32_t>> expect(
      reference.begin(), reference.end());
  ASSERT_EQ(scanned, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BPlusTreeProperty,
                         ::testing::Values(1, 10, 341, 1000, 20000, 100000));

TEST(BPlusTree, PrefixRangeScan) {
  SimulatedBlockDevice dev;
  Pager pager(&dev, 16);
  BPlusTree tree(&pager);
  for (uint32_t p = 0; p < 5; ++p) {
    for (uint32_t s = 0; s < 20; ++s) {
      tree.Insert(MakeKey(p, s, s * 10));
    }
  }
  // All keys with a == 3: [ (3,0,0), (4,0,0) ).
  std::vector<TripleKey> got;
  tree.RangeScan(MakeKey(3, 0, 0), MakeKey(4, 0, 0), [&](const TripleKey& k) {
    got.push_back(k);
    return true;
  });
  ASSERT_EQ(got.size(), 20u);
  for (const auto& k : got) EXPECT_EQ(k.a, 3u);
  // Early termination.
  int count = 0;
  tree.RangeScan(MakeKey(0, 0, 0), MakeKey(~0u, 0, 0), [&](const TripleKey&) {
    return ++count < 7;
  });
  EXPECT_EQ(count, 7);
}

TEST(BPlusTree, SequentialInsertionTriggersManySplits) {
  SimulatedBlockDevice dev;
  Pager pager(&dev, 8);
  BPlusTree tree(&pager);
  const uint32_t n = 200000;
  for (uint32_t i = 0; i < n; ++i) {
    tree.Insert(MakeKey(i >> 16, i >> 8, i));
  }
  EXPECT_EQ(tree.size(), n);
  EXPECT_GT(tree.num_pages(), n / 340);  // at least enough leaves
  uint64_t scanned = 0;
  tree.RangeScan(MakeKey(0, 0, 0), MakeKey(~0u, ~0u, ~0u),
                 [&](const TripleKey&) {
                   ++scanned;
                   return true;
                 });
  EXPECT_EQ(scanned, n);
}

}  // namespace
}  // namespace sedge
