// Tests for the ontology model, the LiteMat encoder, and the dictionaries.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "litemat/dictionary.h"
#include "litemat/hierarchy_encoding.h"
#include "ontology/ontology.h"
#include "rdf/rdf_parser.h"
#include "rdf/vocabulary.h"
#include "util/rng.h"

namespace sedge::litemat {
namespace {

using ontology::Ontology;
using ontology::PropertyKind;

// --------------------------------------------------------------- Ontology

TEST(Ontology, FromGraphExtractsRdfStructure) {
  const auto graph = rdf::ParseTurtle(R"(
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:Animal a owl:Class .
ex:Dog rdfs:subClassOf ex:Animal .
ex:Puppy rdfs:subClassOf ex:Dog .
ex:Cat rdfs:subClassOf ex:Animal .
ex:hasOwner a owl:ObjectProperty ; rdfs:domain ex:Animal ; rdfs:range ex:Person .
ex:hasAge a owl:DatatypeProperty ; rdfs:range xsd:integer .
ex:hasPuppyOwner rdfs:subPropertyOf ex:hasOwner .
)");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  const auto onto_result = Ontology::FromGraph(graph.value());
  ASSERT_TRUE(onto_result.ok());
  const Ontology& onto = onto_result.value();

  EXPECT_TRUE(onto.IsClass("http://example.org/Animal"));
  EXPECT_TRUE(onto.IsClass("http://example.org/Puppy"));
  EXPECT_EQ(onto.PrimaryParentClass("http://example.org/Puppy"),
            "http://example.org/Dog");
  EXPECT_TRUE(onto.IsSubClassOf("http://example.org/Puppy",
                                "http://example.org/Animal"));
  EXPECT_FALSE(onto.IsSubClassOf("http://example.org/Cat",
                                 "http://example.org/Dog"));
  const auto subs = onto.SubClassesTransitive("http://example.org/Animal");
  EXPECT_EQ(subs.size(), 4u);  // Animal, Dog, Puppy, Cat

  EXPECT_EQ(onto.KindOf("http://example.org/hasOwner"), PropertyKind::kObject);
  EXPECT_EQ(onto.KindOf("http://example.org/hasAge"), PropertyKind::kDatatype);
  EXPECT_TRUE(onto.IsSubPropertyOf("http://example.org/hasPuppyOwner",
                                   "http://example.org/hasOwner"));
  ASSERT_NE(onto.DomainOf("http://example.org/hasOwner"), nullptr);
  EXPECT_EQ(*onto.DomainOf("http://example.org/hasOwner"),
            "http://example.org/Animal");
}

TEST(Ontology, RangeXsdImpliesDatatypeProperty) {
  const auto graph = rdf::ParseTurtle(R"(
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix ex: <http://example.org/> .
ex:weight rdfs:range xsd:double .
)");
  ASSERT_TRUE(graph.ok());
  const auto onto = Ontology::FromGraph(graph.value());
  ASSERT_TRUE(onto.ok());
  EXPECT_EQ(onto.value().KindOf("http://example.org/weight"),
            PropertyKind::kDatatype);
}

TEST(Ontology, RoundTripsThroughGraph) {
  Ontology onto;
  onto.AddSubClassOf("B", "A");
  onto.AddSubClassOf("C", "A");
  onto.AddSubPropertyOf("q", "p", PropertyKind::kObject);
  onto.SetDomain("p", "A");
  const auto back = Ontology::FromGraph(onto.ToGraph());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().IsSubClassOf("B", "A"));
  EXPECT_TRUE(back.value().IsSubPropertyOf("q", "p"));
  EXPECT_EQ(*back.value().DomainOf("p"), "A");
}

// ------------------------------------------------------- LiteMatHierarchy

TEST(LiteMat, PaperFigure2Example) {
  // Axioms: A ⊑ Thing, B ⊑ Thing, C ⊑ B, D ⊑ B (Figure 2).
  const auto h = LiteMatHierarchy::Encode(
      "Thing", {"A", "B", "C", "D"},
      {{"A", "Thing"}, {"B", "Thing"}, {"C", "B"}, {"D", "B"}});
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  const LiteMatHierarchy& lm = h.value();
  // Thing = '1'; A,B take 2 local bits (codes 01,10); C,D take 2 more.
  // Total length = 1 + 2 + 2 = 5 bits.
  EXPECT_EQ(lm.total_bits(), 5);
  EXPECT_EQ(lm.IdOf("Thing").value(), 0b10000u);
  EXPECT_EQ(lm.IdOf("A").value(), 0b10100u);
  EXPECT_EQ(lm.IdOf("B").value(), 0b11000u);
  EXPECT_EQ(lm.IdOf("C").value(), 0b11001u);
  EXPECT_EQ(lm.IdOf("D").value(), 0b11010u);

  // Interval of B covers B, C, D and nothing else.
  const auto b_interval = lm.Interval("B").value();
  EXPECT_EQ(b_interval.first, 0b11000u);
  EXPECT_EQ(b_interval.second, 0b11000u + 4u);  // span 2^(5-3)
  EXPECT_TRUE(lm.SubsumedBy(lm.IdOf("C").value(), "B"));
  EXPECT_TRUE(lm.SubsumedBy(lm.IdOf("D").value(), "B"));
  EXPECT_TRUE(lm.SubsumedBy(lm.IdOf("B").value(), "B"));  // reflexive
  EXPECT_FALSE(lm.SubsumedBy(lm.IdOf("A").value(), "B"));
  // Everything is subsumed by Thing.
  for (const char* name : {"A", "B", "C", "D"}) {
    EXPECT_TRUE(lm.SubsumedBy(lm.IdOf(name).value(), "Thing")) << name;
  }
}

TEST(LiteMat, OrphansAttachToRoot) {
  const auto h = LiteMatHierarchy::Encode("Top", {"x", "y"}, {});
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h.value().SubsumedBy(h.value().IdOf("x").value(), "Top"));
  EXPECT_FALSE(h.value().SubsumedBy(h.value().IdOf("x").value(), "y"));
}

TEST(LiteMat, RejectsCycles) {
  const auto h = LiteMatHierarchy::Encode(
      "Top", {"a", "b"}, {{"a", "b"}, {"b", "a"}});
  EXPECT_FALSE(h.ok());
}

TEST(LiteMat, ReverseLookup) {
  const auto h =
      LiteMatHierarchy::Encode("Top", {"a", "b"}, {{"b", "a"}});
  ASSERT_TRUE(h.ok());
  const LiteMatHierarchy& lm = h.value();
  EXPECT_EQ(lm.NameOf(lm.IdOf("b").value()).value(), "b");
  EXPECT_EQ(lm.NameOf(lm.IdOf("a").value() + 12345), std::nullopt);
}

// Property test: on random trees, the LiteMat interval must contain exactly
// the transitive closure computed over the explicit edges.
class LiteMatProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LiteMatProperty, IntervalEqualsTransitiveClosure) {
  const uint64_t n = GetParam();
  Rng rng(n * 7919);
  std::vector<std::string> names;
  std::map<std::string, std::string> parent;
  Ontology onto;
  for (uint64_t i = 0; i < n; ++i) {
    names.push_back("C" + std::to_string(i));
  }
  for (uint64_t i = 1; i < n; ++i) {
    // Parent chosen among earlier nodes: guarantees an acyclic forest.
    const uint64_t p = rng.Uniform(i);
    parent[names[i]] = names[p];
    onto.AddSubClassOf(names[i], names[p]);
  }
  const auto h = LiteMatHierarchy::Encode("Root", names, parent);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  const LiteMatHierarchy& lm = h.value();

  for (uint64_t trial = 0; trial < std::min<uint64_t>(n, 30); ++trial) {
    const std::string& target = names[rng.Uniform(n)];
    const auto closure_vec = onto.SubClassesTransitive(target);
    const std::set<std::string> closure(closure_vec.begin(),
                                        closure_vec.end());
    for (const std::string& name : names) {
      const bool in_interval = lm.SubsumedBy(lm.IdOf(name).value(), target);
      const bool in_closure = closure.count(name) > 0;
      ASSERT_EQ(in_interval, in_closure)
          << name << " vs " << target << " (n=" << n << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TreeSizes, LiteMatProperty,
                         ::testing::Values(1, 2, 5, 20, 100, 500));

// -------------------------------------------------------------- Dictionary

TEST(Dictionary, BuildsThreeIdSpaces) {
  const auto onto_graph = rdf::ParseTurtle(R"(
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:Sensor a owl:Class .
ex:PressureSensor rdfs:subClassOf ex:Sensor .
ex:hosts a owl:ObjectProperty .
ex:value a owl:DatatypeProperty .
)");
  ASSERT_TRUE(onto_graph.ok());
  const auto onto = Ontology::FromGraph(onto_graph.value());
  ASSERT_TRUE(onto.ok());

  const auto data = rdf::ParseTurtle(R"(
@prefix ex: <http://example.org/> .
ex:p1 ex:hosts ex:s1 .
ex:s1 a ex:PressureSensor .
ex:s1 ex:value 3.1 .
ex:s1 ex:undeclaredObjProp ex:p1 .
ex:s1 ex:undeclaredDataProp "x" .
ex:s1 a ex:UndeclaredClass .
)");
  ASSERT_TRUE(data.ok());

  const auto dict_result = Dictionary::Build(onto.value(), data.value());
  ASSERT_TRUE(dict_result.ok()) << dict_result.status().ToString();
  const Dictionary& dict = dict_result.value();

  // Declared and data-discovered concepts are encoded.
  EXPECT_TRUE(dict.ConceptId("http://example.org/Sensor").has_value());
  EXPECT_TRUE(dict.ConceptId("http://example.org/UndeclaredClass").has_value());
  // The hierarchy is honoured.
  const auto sensor_interval =
      dict.ConceptInterval("http://example.org/Sensor").value();
  const uint64_t pressure_id =
      dict.ConceptId("http://example.org/PressureSensor").value();
  EXPECT_GE(pressure_id, sensor_interval.first);
  EXPECT_LT(pressure_id, sensor_interval.second);

  // Property spaces: declared kinds plus data-inferred kinds.
  EXPECT_TRUE(dict.IsObjectProperty("http://example.org/hosts"));
  EXPECT_TRUE(dict.IsDatatypeProperty("http://example.org/value"));
  EXPECT_TRUE(dict.IsObjectProperty("http://example.org/undeclaredObjProp"));
  EXPECT_TRUE(dict.IsDatatypeProperty("http://example.org/undeclaredDataProp"));

  // Ids round-trip.
  const uint64_t hosts = dict.ObjectPropertyId("http://example.org/hosts").value();
  EXPECT_EQ(dict.ObjectPropertyIri(hosts).value(), "http://example.org/hosts");
}

TEST(Dictionary, InstanceIdsAreDenseAndStable) {
  Dictionary dict;
  const rdf::Term a = rdf::Term::Iri("http://e/a");
  const rdf::Term b = rdf::Term::Blank("b0");
  const uint32_t ia = dict.InstanceIdOrAssign(a);
  const uint32_t ib = dict.InstanceIdOrAssign(b);
  EXPECT_EQ(ia, 0u);
  EXPECT_EQ(ib, 1u);
  EXPECT_EQ(dict.InstanceIdOrAssign(a), ia);  // stable
  EXPECT_EQ(dict.InstanceTerm(ib), b);
  EXPECT_EQ(dict.InstanceId(rdf::Term::Iri("http://e/zzz")), std::nullopt);
  EXPECT_EQ(dict.num_instances(), 2u);
}

TEST(Dictionary, HierarchyAggregatedStatistics) {
  // C2 ⊑ C1 ⊑ C0 and C3 ⊑ C0 — the paper's statistics example: the count
  // of C0 must sum the counts of C0..C3.
  Ontology onto;
  onto.AddSubClassOf("C1", "C0");
  onto.AddSubClassOf("C2", "C1");
  onto.AddSubClassOf("C3", "C0");
  rdf::Graph empty;
  auto dict_result = Dictionary::Build(onto, empty);
  ASSERT_TRUE(dict_result.ok());
  Dictionary& dict = dict_result.value();

  const auto record = [&dict](const std::string& c, int times) {
    for (int i = 0; i < times; ++i) {
      dict.RecordConceptOccurrence(dict.ConceptId(c).value());
    }
  };
  record("C0", 1);
  record("C1", 2);
  record("C2", 4);
  record("C3", 8);
  EXPECT_EQ(dict.ConceptCountAggregated("C2"), 4u);
  EXPECT_EQ(dict.ConceptCountAggregated("C1"), 6u);
  EXPECT_EQ(dict.ConceptCountAggregated("C3"), 8u);
  EXPECT_EQ(dict.ConceptCountAggregated("C0"), 15u);
}

TEST(Dictionary, PropertyAggregatedStatistics) {
  Ontology onto;
  onto.AddSubPropertyOf("worksFor", "memberOf", PropertyKind::kObject);
  onto.AddSubPropertyOf("headOf", "worksFor", PropertyKind::kObject);
  rdf::Graph empty;
  auto dict_result = Dictionary::Build(onto, empty);
  ASSERT_TRUE(dict_result.ok());
  Dictionary& dict = dict_result.value();
  dict.RecordObjectPropertyOccurrence(dict.ObjectPropertyId("memberOf").value());
  dict.RecordObjectPropertyOccurrence(dict.ObjectPropertyId("worksFor").value());
  dict.RecordObjectPropertyOccurrence(dict.ObjectPropertyId("headOf").value());
  EXPECT_EQ(dict.PropertyCountAggregated("headOf"), 1u);
  EXPECT_EQ(dict.PropertyCountAggregated("worksFor"), 2u);
  EXPECT_EQ(dict.PropertyCountAggregated("memberOf"), 3u);
}

}  // namespace
}  // namespace sedge::litemat
