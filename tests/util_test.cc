// Tests for the util substrate: Status/Result, strings, RNG, timers.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace sedge {
namespace {

TEST(Status, OkByDefault) {
  const Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  const Status st = Status::ParseError("line 3: bad token");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsParseError());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.ToString(), "ParseError: line 3: bad token");
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  SEDGE_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return HalveEven(half);
}

TEST(Result, ValueAndErrorPaths) {
  EXPECT_TRUE(HalveEven(4).ok());
  EXPECT_EQ(HalveEven(4).value(), 2);
  EXPECT_FALSE(HalveEven(3).ok());
  EXPECT_EQ(HalveEven(3).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(HalveEven(3).ValueOr(-1), -1);
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(QuarterViaMacro(8).value(), 2);
  EXPECT_FALSE(QuarterViaMacro(6).ok());  // inner halving yields odd 3
  EXPECT_FALSE(QuarterViaMacro(5).ok());
}

TEST(StringUtil, Split) {
  EXPECT_EQ(SplitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtil, Strip) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringUtil, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("http://e.org/x", "http://"));
  EXPECT_FALSE(StartsWith("x", "http://"));
  EXPECT_TRUE(EndsWith("file.ttl", ".ttl"));
  EXPECT_FALSE(EndsWith("ttl", ".ttl"));
}

TEST(StringUtil, JoinAndHumanBytes) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KiB");
  EXPECT_EQ(HumanBytes(3u << 20), "3.0 MiB");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(8);
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const uint64_t r = rng.UniformRange(5, 9);
    EXPECT_GE(r, 5u);
    EXPECT_LE(r, 9u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer timer;
  // Busy loop long enough to register.
  volatile uint64_t x = 0;
  for (int i = 0; i < 2000000; ++i) x += static_cast<uint64_t>(i);
  EXPECT_GT(timer.ElapsedMicros(), 0.0);
  const double before = timer.ElapsedSeconds();
  timer.Restart();
  EXPECT_LE(timer.ElapsedSeconds(), before + 1.0);
}

TEST(Timer, RssProbesReturnPlausibleValues) {
  const uint64_t rss = CurrentRssBytes();
  const uint64_t peak = PeakRssBytes();
  EXPECT_GT(rss, 1u << 20);  // a running gtest binary exceeds 1 MiB
  // VmHWM is absent on some kernels; the probe documents returning 0 then.
  if (peak != 0) {
    EXPECT_GE(peak, rss / 2);
  }
}

TEST(Mutex, MutualExclusionUnderContention) {
  util::Mutex mu;
  int counter = 0;
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIncrements; ++i) {
        util::MutexLock lk(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  util::MutexLock lk(&mu);
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(Mutex, TryLockReportsContention) {
  util::Mutex mu;
  // Branch on the raw result (not through EXPECT_TRUE) so Clang's
  // try-acquire analysis can pair each TryLock with its Unlock.
  const bool first = mu.TryLock();
  ASSERT_TRUE(first);
  if (first) {
    mu.AssertHeld();  // no-op at runtime; documents the invariant
    std::atomic<bool> second_acquired{false};
    std::thread prober([&] {
      if (mu.TryLock()) {
        second_acquired = true;
        mu.Unlock();
      }
    });
    prober.join();
    EXPECT_FALSE(second_acquired.load());
    mu.Unlock();
  }
  const bool again = mu.TryLock();
  EXPECT_TRUE(again);
  if (again) mu.Unlock();
}

TEST(CondVar, WaitWakesOnNotify) {
  util::Mutex mu;
  util::CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    util::MutexLock lk(&mu);
    while (!ready) cv.Wait(&mu);
  });
  {
    util::MutexLock lk(&mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();  // hangs (test times out) if the wake is lost
  util::MutexLock lk(&mu);
  EXPECT_TRUE(ready);
}

TEST(CondVar, NotifyAllReleasesEveryWaiter) {
  util::Mutex mu;
  util::CondVar cv;
  bool go = false;
  int awake = 0;
  constexpr int kWaiters = 3;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      util::MutexLock lk(&mu);
      while (!go) cv.Wait(&mu);
      ++awake;
    });
  }
  {
    util::MutexLock lk(&mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& t : waiters) t.join();
  util::MutexLock lk(&mu);
  EXPECT_EQ(awake, kWaiters);
}

TEST(SharedMutex, ReadersShareWritersExclude) {
  util::SharedMutex mu;
  int value = 0;
  std::atomic<int> concurrent_readers{0};
  std::atomic<int> max_concurrent_readers{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        util::WriterMutexLock lk(&mu);
        ++value;
      }
    });
  }
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        util::ReaderMutexLock lk(&mu);
        const int now = concurrent_readers.fetch_add(1) + 1;
        int seen = max_concurrent_readers.load();
        while (now > seen &&
               !max_concurrent_readers.compare_exchange_weak(seen, now)) {
        }
        EXPECT_GE(value, 0);  // a torn writer increment would go negative
        concurrent_readers.fetch_sub(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  util::WriterMutexLock lk(&mu);
  EXPECT_EQ(value, 2 * 2000);
  // Not asserted (scheduling-dependent), but typically > 1: readers did
  // overlap while writers stayed mutually excluded.
  (void)max_concurrent_readers;
}

TEST(ThreadPool, DestructorDrainsEverySubmittedTask) {
  std::atomic<int> ran{0};
  {
    util::ThreadPool pool(3);
    EXPECT_EQ(pool.num_threads(), 3u);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }  // the destructor runs the backlog before joining
  EXPECT_EQ(ran.load(), 100);
}

TEST(RunParallel, CompletesAllTasksAndSupportsNesting) {
  util::ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(16);
  std::vector<std::function<void()>> outer;
  for (size_t i = 0; i < 4; ++i) {
    outer.emplace_back([&hits, &pool, i] {
      // Nested fork-join on the same pool — the compaction build shape
      // (per-layout tasks fanning out per-structure tasks).
      std::vector<std::function<void()>> inner;
      for (size_t j = 0; j < 4; ++j) {
        inner.emplace_back([&hits, i, j] { hits[i * 4 + j].fetch_add(1); });
      }
      util::RunParallel(&pool, std::move(inner));
    });
  }
  util::RunParallel(&pool, std::move(outer));
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RunParallel, NullPoolRunsSequentially) {
  int calls = 0;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.emplace_back([&calls] { ++calls; });  // not atomic: must be serial
  }
  util::RunParallel(nullptr, std::move(tasks));
  EXPECT_EQ(calls, 8);
  util::RunParallel(nullptr, {});  // empty task list is a no-op
}

TEST(RunParallel, OverlappingCallsFromTwoProducers) {
  // Two threads fork-joining on one shared pool concurrently — the sync
  // Compact() vs. async fold-worker overlap RunParallel must survive.
  util::ThreadPool pool(2);
  std::atomic<int> total{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 2; ++t) {
    producers.emplace_back([&pool, &total] {
      for (int round = 0; round < 50; ++round) {
        std::vector<std::function<void()>> tasks;
        for (int i = 0; i < 6; ++i) {
          tasks.emplace_back([&total] { total.fetch_add(1); });
        }
        util::RunParallel(&pool, std::move(tasks));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(total.load(), 2 * 50 * 6);
}

}  // namespace
}  // namespace sedge
