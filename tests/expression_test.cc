// Direct tests for the FILTER/BIND expression evaluator, using a stub
// decoder (no store involved).

#include <map>

#include <gtest/gtest.h>

#include "rdf/vocabulary.h"
#include "sparql/expression.h"
#include "sparql/sparql_parser.h"

namespace sedge::sparql {
namespace {

using store::EncodedTerm;
using store::ValueSpace;

// Decoder over a fixed id -> term table.
class StubDecoder : public ValueDecoder {
 public:
  void Add(uint64_t id, rdf::Term term) { terms_[id] = std::move(term); }

  rdf::Term Decode(const EncodedTerm& value) const override {
    return terms_.at(value.id);
  }
  std::optional<double> Numeric(const EncodedTerm& value) const override {
    const rdf::Term& t = terms_.at(value.id);
    if (!t.IsNumericLiteral()) return std::nullopt;
    return t.AsDouble();
  }
  std::string Str(const EncodedTerm& value) const override {
    return terms_.at(value.id).lexical();
  }

 private:
  std::map<uint64_t, rdf::Term> terms_;
};

// Parses the FILTER body of a dummy query so tests can write SPARQL syntax.
std::unique_ptr<Expr> ParseExpr(const std::string& text) {
  const auto q = ParseQuery("SELECT ?x WHERE { ?x ?p ?o . FILTER (" + text +
                            ") }");
  EXPECT_TRUE(q.ok()) << q.status().ToString() << " for " << text;
  auto& filters = const_cast<Query&>(q.value()).where.filters;
  return std::move(filters[0]);
}

class ExpressionTest : public ::testing::Test {
 protected:
  ExpressionTest() : evaluator_(&decoder_) {
    decoder_.Add(1, rdf::Term::Literal("42", rdf::kXsdInteger));
    decoder_.Add(2, rdf::Term::Literal("3.5", rdf::kXsdDecimal));
    decoder_.Add(3, rdf::Term::Literal("hello world"));
    decoder_.Add(4, rdf::Term::Iri("http://example.org/unit/BAR"));
    bindings_["n"] = {ValueSpace::kLiteral, 1};
    bindings_["d"] = {ValueSpace::kLiteral, 2};
    bindings_["s"] = {ValueSpace::kLiteral, 3};
    bindings_["u"] = {ValueSpace::kInstance, 4};
  }

  bool Eval(const std::string& text) {
    const auto expr = ParseExpr(text);
    return evaluator_.EffectiveBool(*expr, [this](const Variable& v) {
      const auto it = bindings_.find(v.name);
      if (it == bindings_.end()) return std::optional<EncodedTerm>();
      return std::optional<EncodedTerm>(it->second);
    });
  }

  StubDecoder decoder_;
  ExpressionEvaluator evaluator_;
  std::map<std::string, EncodedTerm> bindings_;
};

TEST_F(ExpressionTest, NumericComparisons) {
  EXPECT_TRUE(Eval("?n = 42"));
  EXPECT_TRUE(Eval("?n > 41"));
  EXPECT_FALSE(Eval("?n > 42"));
  EXPECT_TRUE(Eval("?n >= 42"));
  EXPECT_TRUE(Eval("?d < 4"));
  EXPECT_TRUE(Eval("?d != ?n"));
  EXPECT_TRUE(Eval("?n = 42.0"));  // integer/decimal promotion
}

TEST_F(ExpressionTest, Arithmetic) {
  EXPECT_TRUE(Eval("?n + 8 = 50"));
  EXPECT_TRUE(Eval("?n - 2 = 40"));
  EXPECT_TRUE(Eval("?n * 2 = 84"));
  EXPECT_TRUE(Eval("?n / 4 = 10.5"));
  EXPECT_TRUE(Eval("-?n = 0 - 42"));
  EXPECT_FALSE(Eval("?n / 0 = 1"));  // division by zero errors -> false
  // Precedence: 2 + 3 * 4 = 14.
  EXPECT_TRUE(Eval("2 + 3 * 4 = 14"));
  EXPECT_TRUE(Eval("(2 + 3) * 4 = 20"));
}

TEST_F(ExpressionTest, BooleanConnectives) {
  EXPECT_TRUE(Eval("?n = 42 && ?d = 3.5"));
  EXPECT_FALSE(Eval("?n = 42 && ?d = 9"));
  EXPECT_TRUE(Eval("?n = 0 || ?d = 3.5"));
  EXPECT_FALSE(Eval("?n = 0 || ?d = 9"));
  EXPECT_TRUE(Eval("!(?n = 0)"));
  // Errors propagate as false through &&.
  EXPECT_FALSE(Eval("?missing > 1 && ?n = 42"));
  EXPECT_TRUE(Eval("?missing > 1 || ?n = 42"));
}

TEST_F(ExpressionTest, StringFunctions) {
  EXPECT_TRUE(Eval("regex(str(?s), \"hello\")"));
  EXPECT_TRUE(Eval("regex(str(?s), \"^hello w\")"));
  EXPECT_FALSE(Eval("regex(str(?s), \"^world\")"));
  EXPECT_TRUE(Eval("regex(str(?u), \"BAR\")"));  // IRIs stringify
  EXPECT_TRUE(Eval("contains(str(?s), \"lo wo\")"));
  EXPECT_TRUE(Eval("strstarts(str(?s), \"hel\")"));
  EXPECT_FALSE(Eval("strstarts(str(?s), \"world\")"));
  EXPECT_TRUE(Eval("strends(str(?s), \"world\")"));
  EXPECT_TRUE(Eval("str(?n) = \"42\""));
}

TEST_F(ExpressionTest, ConditionalAndBound) {
  EXPECT_TRUE(Eval("if(?n > 10, 1, 0) = 1"));
  EXPECT_TRUE(Eval("if(?n > 100, 1, 0) = 0"));
  EXPECT_TRUE(Eval("bound(?n)"));
  EXPECT_FALSE(Eval("bound(?missing)"));
  // Nested conditionals (the motivating-example shape).
  EXPECT_TRUE(Eval(
      "if(regex(str(?u), \"BAR\"), ?n, if(regex(str(?u), \"PA\"), "
      "?n / 1000, 0)) = 42"));
}

TEST_F(ExpressionTest, NumericFunctions) {
  EXPECT_TRUE(Eval("abs(0 - ?n) = 42"));
  EXPECT_TRUE(Eval("ceil(?d) = 4"));
  EXPECT_TRUE(Eval("floor(?d) = 3"));
  EXPECT_TRUE(Eval("round(?d) = 4"));
}

TEST_F(ExpressionTest, TypeIntrospection) {
  EXPECT_TRUE(Eval("isliteral(?n)"));
  EXPECT_FALSE(Eval("isliteral(?u)"));
  EXPECT_TRUE(Eval("isiri(?u)"));
  EXPECT_FALSE(Eval("isblank(?u)"));
  EXPECT_TRUE(Eval("datatype(?n) = "
                   "\"http://www.w3.org/2001/XMLSchema#integer\""));
}

TEST_F(ExpressionTest, UnknownFunctionErrorsToFalse) {
  EXPECT_FALSE(Eval("frobnicate(?n)"));
}

TEST_F(ExpressionTest, EffectiveBooleanValueRules) {
  EXPECT_TRUE(Eval("\"nonempty\""));
  EXPECT_FALSE(Eval("\"\""));
  EXPECT_TRUE(Eval("1"));
  EXPECT_FALSE(Eval("0"));
  EXPECT_TRUE(Eval("true"));
  EXPECT_FALSE(Eval("false"));
}

}  // namespace
}  // namespace sedge::sparql
