// Unit and property tests for the succinct data structure substrate.

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "sds/bit_vector.h"
#include "sds/elias_fano.h"
#include "sds/int_vector.h"
#include "sds/rrr_bit_vector.h"
#include "sds/succinct_bit_vector.h"
#include "sds/wavelet_tree.h"
#include "util/rng.h"

namespace sedge::sds {
namespace {

// ---------------------------------------------------------------- BitVector

TEST(BitVector, PushBackAndGet) {
  BitVector bv;
  for (int i = 0; i < 200; ++i) bv.PushBack(i % 3 == 0);
  ASSERT_EQ(bv.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(bv.Get(i), i % 3 == 0) << i;
}

TEST(BitVector, SetClearsAndSets) {
  BitVector bv(130, false);
  bv.Set(0, true);
  bv.Set(64, true);
  bv.Set(129, true);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(64));
  EXPECT_TRUE(bv.Get(129));
  EXPECT_EQ(bv.CountOnes(), 3u);
  bv.Set(64, false);
  EXPECT_FALSE(bv.Get(64));
  EXPECT_EQ(bv.CountOnes(), 2u);
}

TEST(BitVector, AllOnesConstructorTrimsTail) {
  BitVector bv(70, true);
  EXPECT_EQ(bv.CountOnes(), 70u);
}

// ------------------------------------------------------- SuccinctBitVector

class SuccinctBitVectorProperty
    : public ::testing::TestWithParam<std::pair<uint64_t, double>> {};

TEST_P(SuccinctBitVectorProperty, RankSelectMatchNaive) {
  const auto [n, density] = GetParam();
  Rng rng(n * 1000003 + static_cast<uint64_t>(density * 97));
  BitVector bits(n);
  std::vector<uint64_t> one_positions;
  std::vector<uint64_t> zero_positions;
  for (uint64_t i = 0; i < n; ++i) {
    const bool bit = rng.Bernoulli(density);
    bits.Set(i, bit);
    (bit ? one_positions : zero_positions).push_back(i);
  }
  SuccinctBitVector sbv(bits);
  ASSERT_EQ(sbv.size(), n);
  ASSERT_EQ(sbv.ones(), one_positions.size());

  // Rank at every position (prefix sums are the ground truth).
  uint64_t ones_so_far = 0;
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(sbv.Rank1(i), ones_so_far) << "rank1 @" << i;
    ASSERT_EQ(sbv.Rank0(i), i - ones_so_far) << "rank0 @" << i;
    if (bits.Get(i)) ++ones_so_far;
    ASSERT_EQ(sbv.Access(i), bits.Get(i)) << "access @" << i;
  }
  ASSERT_EQ(sbv.Rank1(n), one_positions.size());

  for (uint64_t k = 1; k <= one_positions.size(); ++k) {
    ASSERT_EQ(sbv.Select1(k), one_positions[k - 1]) << "select1 @" << k;
  }
  for (uint64_t k = 1; k <= zero_positions.size(); ++k) {
    ASSERT_EQ(sbv.Select0(k), zero_positions[k - 1]) << "select0 @" << k;
  }
  // Sentinels close the last block range (paper Algorithms 2-4).
  EXPECT_EQ(sbv.Select1(one_positions.size() + 1), n);
  EXPECT_EQ(sbv.Select0(zero_positions.size() + 1), n);
}

INSTANTIATE_TEST_SUITE_P(
    Densities, SuccinctBitVectorProperty,
    ::testing::Values(std::pair<uint64_t, double>{0, 0.5},
                      std::pair<uint64_t, double>{1, 1.0},
                      std::pair<uint64_t, double>{63, 0.3},
                      std::pair<uint64_t, double>{64, 0.5},
                      std::pair<uint64_t, double>{65, 0.9},
                      std::pair<uint64_t, double>{1000, 0.01},
                      std::pair<uint64_t, double>{4096, 0.5},
                      std::pair<uint64_t, double>{10000, 0.99},
                      std::pair<uint64_t, double>{100000, 0.001},
                      std::pair<uint64_t, double>{100000, 0.6}));

TEST(SuccinctBitVector, AllOnes) {
  BitVector bits(1000, true);
  SuccinctBitVector sbv(bits);
  EXPECT_EQ(sbv.ones(), 1000u);
  EXPECT_EQ(sbv.Rank1(500), 500u);
  EXPECT_EQ(sbv.Select1(1000), 999u);
  EXPECT_EQ(sbv.Select1(1001), 1000u);  // sentinel
}

TEST(SuccinctBitVector, AllZeros) {
  BitVector bits(1000, false);
  SuccinctBitVector sbv(bits);
  EXPECT_EQ(sbv.ones(), 0u);
  EXPECT_EQ(sbv.Rank1(1000), 0u);
  EXPECT_EQ(sbv.Select0(1000), 999u);
  EXPECT_EQ(sbv.Select1(1), 1000u);  // sentinel for k = ones+1 = 1
}

TEST(SuccinctBitVector, SelectAtDirectoryBoundaries) {
  // Ones exactly at block (256) and superblock (2048) starts, stressing
  // the directory-hop select: the binary search must land on the last
  // superblock with before(s) < k even when the answer IS the boundary
  // bit, and the sentinel must survive a bit in the final word.
  const uint64_t n = 3 * 2048 + 5;
  BitVector bits(n);
  std::vector<uint64_t> ones;
  for (uint64_t p = 0; p < n; p += 256) {
    bits.Set(p, true);
    ones.push_back(p);
  }
  bits.Set(n - 1, true);
  ones.push_back(n - 1);
  SuccinctBitVector sbv(bits);
  for (uint64_t k = 1; k <= ones.size(); ++k) {
    ASSERT_EQ(sbv.Select1(k), ones[k - 1]) << "k=" << k;
  }
  EXPECT_EQ(sbv.Select1(ones.size() + 1), n);  // sentinel
  // Select0 across the same boundaries: zeros are everything else.
  EXPECT_EQ(sbv.Select0(1), 1u);
  EXPECT_EQ(sbv.Select0(255), 255u);  // last zero before the boundary one
  EXPECT_EQ(sbv.Select0(256), 257u);  // hops over the block-boundary one
  EXPECT_EQ(sbv.Select0(sbv.size() - sbv.ones() + 1), n);  // sentinel
}

TEST(SuccinctBitVector, PaperFigure5PsBitmap) {
  // Figure 5: PS bitmap "100100..." — p1 owns subjects {s1,s2,s4}, p2 the
  // rest. '1' starts a predicate's subject run.
  BitVector bits(6);
  bits.Set(0, true);  // p1 run starts
  bits.Set(3, true);  // p2 run starts
  SuccinctBitVector bm(bits);
  // Subject range of predicate 0: [Select1(1), Select1(2)) = [0, 3).
  EXPECT_EQ(bm.Select1(1), 0u);
  EXPECT_EQ(bm.Select1(2), 3u);
  // Subject range of predicate 1 (last): [Select1(2), Select1(3)) = [3, 6).
  EXPECT_EQ(bm.Select1(3), 6u);  // sentinel closes the final run
}

// ----------------------------------------------------------------- IntVector

TEST(IntVector, WidthFor) {
  EXPECT_EQ(IntVector::WidthFor(0), 1);
  EXPECT_EQ(IntVector::WidthFor(1), 1);
  EXPECT_EQ(IntVector::WidthFor(2), 2);
  EXPECT_EQ(IntVector::WidthFor(255), 8);
  EXPECT_EQ(IntVector::WidthFor(256), 9);
  EXPECT_EQ(IntVector::WidthFor(~0ULL), 64);
}

class IntVectorWidths : public ::testing::TestWithParam<uint8_t> {};

TEST_P(IntVectorWidths, RoundTripsRandomValues) {
  const uint8_t width = GetParam();
  const uint64_t mask = width == 64 ? ~0ULL : (1ULL << width) - 1;
  Rng rng(width);
  const uint64_t n = 700;
  std::vector<uint64_t> expect(n);
  IntVector iv(n, width);
  for (uint64_t i = 0; i < n; ++i) {
    expect[i] = rng.Next() & mask;
    iv.Set(i, expect[i]);
  }
  for (uint64_t i = 0; i < n; ++i) ASSERT_EQ(iv.Get(i), expect[i]) << i;
  // Overwrite in reverse order; earlier writes must not be clobbered.
  for (uint64_t i = n; i-- > 0;) iv.Set(i, (expect[i] + 1) & mask);
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(iv.Get(i), (expect[i] + 1) & mask) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, IntVectorWidths,
                         ::testing::Values(1, 2, 3, 7, 8, 13, 16, 31, 32, 33,
                                           48, 63, 64));

TEST(IntVector, FromValuesPicksMinimalWidth) {
  IntVector iv = IntVector::FromValues({0, 5, 1023});
  EXPECT_EQ(iv.width(), 10);
  EXPECT_EQ(iv.Get(2), 1023u);
}

// --------------------------------------------------------------- WaveletTree

TEST(WaveletTree, PaperFigure3Example) {
  // Sequence ABFECBCCADEF with A=0..F=5 (paper Figure 3).
  const std::vector<uint64_t> seq = {0, 1, 5, 4, 2, 1, 2, 2, 0, 3, 4, 5};
  WaveletTree wt(seq);
  ASSERT_EQ(wt.size(), seq.size());
  for (size_t i = 0; i < seq.size(); ++i) EXPECT_EQ(wt.Access(i), seq[i]);
  // Rank over the full sequence: counts per letter.
  EXPECT_EQ(wt.Rank(12, 0), 2u);  // A
  EXPECT_EQ(wt.Rank(12, 1), 2u);  // B
  EXPECT_EQ(wt.Rank(12, 2), 3u);  // C
  EXPECT_EQ(wt.Rank(12, 3), 1u);  // D
  EXPECT_EQ(wt.Rank(12, 4), 2u);  // E
  EXPECT_EQ(wt.Rank(12, 5), 2u);  // F
  // Select: the 2nd C is at index 6, the 1st F at index 2.
  EXPECT_EQ(wt.Select(2, 2), 6u);
  EXPECT_EQ(wt.Select(1, 5), 2u);
  EXPECT_EQ(wt.Select(2, 5), 11u);
  // rangeSearch: occurrences of C in [4, 8) are {4, 6, 7}.
  EXPECT_EQ(wt.RangeSearch(4, 8, 2), (std::vector<uint64_t>{4, 6, 7}));
}

struct WtParam {
  uint64_t n;
  uint64_t sigma;
  uint64_t seed;
};

class WaveletTreeProperty : public ::testing::TestWithParam<WtParam> {};

TEST_P(WaveletTreeProperty, MatchesNaiveReference) {
  const auto [n, sigma, seed] = GetParam();
  Rng rng(seed);
  std::vector<uint64_t> seq(n);
  for (auto& v : seq) v = rng.Uniform(sigma);
  WaveletTree wt(seq);

  // Access everywhere.
  for (uint64_t i = 0; i < n; ++i) ASSERT_EQ(wt.Access(i), seq[i]) << i;

  // Rank/Select for every symbol, via running counts.
  std::map<uint64_t, std::vector<uint64_t>> positions;
  for (uint64_t i = 0; i < n; ++i) positions[seq[i]].push_back(i);
  for (const auto& [c, pos] : positions) {
    for (uint64_t k = 1; k <= pos.size(); ++k) {
      ASSERT_EQ(wt.Select(k, c), pos[k - 1]) << "select c=" << c << " k=" << k;
    }
    ASSERT_EQ(wt.Rank(n, c), pos.size());
  }
  // Spot-check rank at random cut points.
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t i = rng.Uniform(n + 1);
    const uint64_t c = rng.Uniform(sigma);
    const uint64_t expect = static_cast<uint64_t>(
        std::count(seq.begin(), seq.begin() + i, c));
    ASSERT_EQ(wt.Rank(i, c), expect) << "rank i=" << i << " c=" << c;
  }
  // RangeSearch on random windows.
  for (int trial = 0; trial < 100; ++trial) {
    uint64_t a = rng.Uniform(n + 1);
    uint64_t b = rng.Uniform(n + 1);
    if (a > b) std::swap(a, b);
    const uint64_t c = rng.Uniform(sigma);
    std::vector<uint64_t> expect;
    for (uint64_t i = a; i < b; ++i) {
      if (seq[i] == c) expect.push_back(i);
    }
    ASSERT_EQ(wt.RangeSearch(a, b, c), expect);
  }
  // RangeCount / RangeDistinct on random windows and symbol intervals.
  for (int trial = 0; trial < 100; ++trial) {
    uint64_t a = rng.Uniform(n + 1);
    uint64_t b = rng.Uniform(n + 1);
    if (a > b) std::swap(a, b);
    uint64_t lo = rng.Uniform(sigma + 1);
    uint64_t hi = rng.Uniform(sigma + 1);
    if (lo > hi) std::swap(lo, hi);
    uint64_t expect_count = 0;
    std::map<uint64_t, uint64_t> expect_distinct;
    for (uint64_t i = a; i < b; ++i) {
      if (seq[i] >= lo && seq[i] < hi) {
        ++expect_count;
        ++expect_distinct[seq[i]];
      }
    }
    ASSERT_EQ(wt.RangeCount(a, b, lo, hi), expect_count);
    std::map<uint64_t, uint64_t> got;
    uint64_t last_value = 0;
    bool first = true;
    wt.RangeDistinct(a, b, lo, hi, [&](uint64_t v, uint64_t cnt) {
      if (!first) {
        EXPECT_GT(v, last_value) << "values must ascend";
      }
      first = false;
      last_value = v;
      got[v] = cnt;
    });
    ASSERT_EQ(got, expect_distinct);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WaveletTreeProperty,
    ::testing::Values(WtParam{1, 1, 1}, WtParam{100, 2, 2},
                      WtParam{100, 3, 3}, WtParam{1000, 16, 4},
                      WtParam{1000, 17, 5}, WtParam{5000, 100, 6},
                      WtParam{5000, 1000, 7}, WtParam{20000, 65536, 8}));

TEST(WaveletTree, EqualRangeSortedFindsRuns) {
  // Block-sorted sequence, as inside one predicate's subject run.
  const std::vector<uint64_t> seq = {5, 7, 7, 7, 9, 12, /* next block */ 1, 3};
  WaveletTree wt(seq);
  auto [first, last] = wt.EqualRangeSorted(0, 6, 7);
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(last, 4u);
  std::tie(first, last) = wt.EqualRangeSorted(0, 6, 8);
  EXPECT_EQ(first, last);  // absent value: empty range
  std::tie(first, last) = wt.EqualRangeSorted(0, 6, 5);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(last, 1u);
}

TEST(WaveletTree, SingleSymbolAlphabet) {
  WaveletTree wt(std::vector<uint64_t>(50, 0));
  EXPECT_EQ(wt.Rank(50, 0), 50u);
  EXPECT_EQ(wt.Select(50, 0), 49u);
  EXPECT_EQ(wt.RangeCount(0, 50, 0, 1), 50u);
}

// ----------------------------------------------------------------- EliasFano

TEST(EliasFano, RoundTripsSortedSequence) {
  Rng rng(42);
  std::vector<uint64_t> values;
  uint64_t v = 0;
  for (int i = 0; i < 10000; ++i) {
    v += rng.Uniform(100);
    values.push_back(v);
  }
  EliasFano ef(values);
  ASSERT_EQ(ef.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(ef.Access(i), values[i]) << i;
  }
}

TEST(EliasFano, NextGeq) {
  EliasFano ef(std::vector<uint64_t>{2, 2, 5, 9, 100});
  EXPECT_EQ(ef.NextGeq(0), 0u);
  EXPECT_EQ(ef.NextGeq(2), 0u);
  EXPECT_EQ(ef.NextGeq(3), 2u);
  EXPECT_EQ(ef.NextGeq(10), 4u);
  EXPECT_EQ(ef.NextGeq(101), 5u);  // past the end
}

TEST(EliasFano, DenseSequenceUsesFewBits) {
  std::vector<uint64_t> values(100000);
  for (size_t i = 0; i < values.size(); ++i) values[i] = i;
  EliasFano ef(values);
  // ~2 bits/element for a dense run; allow generous slack for directories.
  EXPECT_LT(ef.SizeInBytes(), values.size());  // << 8 bytes/element
  EXPECT_EQ(ef.Access(99999), 99999u);
}

TEST(EliasFano, EmptyAndSingle) {
  EliasFano empty((std::vector<uint64_t>{}));
  EXPECT_EQ(empty.size(), 0u);
  EliasFano one(std::vector<uint64_t>{7});
  EXPECT_EQ(one.Access(0), 7u);
}

// -------------------------------------------------------------- RrrBitVector

class RrrProperty : public ::testing::TestWithParam<std::pair<uint64_t, double>> {
};

TEST_P(RrrProperty, MatchesPlainBitVector) {
  const auto [n, density] = GetParam();
  Rng rng(n + static_cast<uint64_t>(density * 1000));
  BitVector bits(n);
  for (uint64_t i = 0; i < n; ++i) bits.Set(i, rng.Bernoulli(density));
  SuccinctBitVector plain(bits);
  RrrBitVector rrr(bits);
  ASSERT_EQ(rrr.size(), n);
  ASSERT_EQ(rrr.ones(), plain.ones());
  for (uint64_t i = 0; i <= n; ++i) {
    ASSERT_EQ(rrr.Rank1(i), plain.Rank1(i)) << "rank @" << i;
  }
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(rrr.Access(i), plain.Access(i)) << "access @" << i;
  }
  for (uint64_t k = 1; k <= plain.ones(); ++k) {
    ASSERT_EQ(rrr.Select1(k), plain.Select1(k)) << "select @" << k;
  }
  EXPECT_EQ(rrr.Select1(plain.ones() + 1), n);  // sentinel
}

INSTANTIATE_TEST_SUITE_P(
    Densities, RrrProperty,
    ::testing::Values(std::pair<uint64_t, double>{0, 0.5},
                      std::pair<uint64_t, double>{14, 0.5},
                      std::pair<uint64_t, double>{15, 0.5},
                      std::pair<uint64_t, double>{16, 0.5},
                      std::pair<uint64_t, double>{1000, 0.02},
                      std::pair<uint64_t, double>{1000, 0.5},
                      std::pair<uint64_t, double>{1000, 0.98},
                      std::pair<uint64_t, double>{50000, 0.05}));

TEST(RrrBitVector, SparseBitmapCompresses) {
  const uint64_t n = 1 << 18;
  Rng rng(7);
  BitVector bits(n);
  for (uint64_t i = 0; i < n; ++i) bits.Set(i, rng.Bernoulli(0.02));
  SuccinctBitVector plain(bits);
  RrrBitVector rrr(bits);
  EXPECT_LT(rrr.SizeInBytes(), plain.SizeInBytes() / 2)
      << "RRR should be at least 2x smaller on a 2% dense bitmap";
}

}  // namespace
}  // namespace sedge::sds
