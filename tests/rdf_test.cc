// Tests for RDF terms, triples, and the Turtle/N-Triples parser.

#include <gtest/gtest.h>

#include "rdf/rdf_parser.h"
#include "rdf/term.h"
#include "rdf/triple.h"
#include "rdf/vocabulary.h"

namespace sedge::rdf {
namespace {

TEST(Term, FactoryAndAccessors) {
  const Term iri = Term::Iri("http://example.org/a");
  EXPECT_TRUE(iri.is_iri());
  EXPECT_EQ(iri.lexical(), "http://example.org/a");

  const Term blank = Term::Blank("b0");
  EXPECT_TRUE(blank.is_blank());

  const Term lit = Term::Literal("3.25", kXsdDecimal);
  EXPECT_TRUE(lit.is_literal());
  EXPECT_TRUE(lit.IsNumericLiteral());
  EXPECT_DOUBLE_EQ(lit.AsDouble(), 3.25);

  const Term lang = Term::Literal("bonjour", "", "fr");
  EXPECT_FALSE(lang.IsNumericLiteral());
  EXPECT_EQ(lang.lang(), "fr");
}

TEST(Term, NTriplesSerialization) {
  EXPECT_EQ(Term::Iri("http://e.org/x").ToNTriples(), "<http://e.org/x>");
  EXPECT_EQ(Term::Blank("n1").ToNTriples(), "_:n1");
  EXPECT_EQ(Term::Literal("hi").ToNTriples(), "\"hi\"");
  EXPECT_EQ(Term::Literal("5", kXsdInteger).ToNTriples(),
            "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>");
  EXPECT_EQ(Term::Literal("hey", "", "en").ToNTriples(), "\"hey\"@en");
  EXPECT_EQ(Term::Literal("a\"b\\c\nd").ToNTriples(),
            "\"a\\\"b\\\\c\\nd\"");
}

TEST(Term, OrderingIsTotal) {
  const Term a = Term::Iri("http://e.org/a");
  const Term b = Term::Iri("http://e.org/b");
  const Term lit = Term::Literal("a");
  EXPECT_LT(a, b);
  EXPECT_LT(a, lit);  // IRIs sort before literals (kind order)
  EXPECT_FALSE(a < a);
}

TEST(Parser, ParsesNTriples) {
  const auto result = ParseNTriples(
      "<http://e.org/s> <http://e.org/p> <http://e.org/o> .\n"
      "<http://e.org/s> <http://e.org/q> \"42\"^^"
      "<http://www.w3.org/2001/XMLSchema#integer> .\n"
      "_:b0 <http://e.org/p> \"hello world\"@en .\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Graph& g = result.value();
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g.triples()[0].subject.lexical(), "http://e.org/s");
  EXPECT_EQ(g.triples()[1].object.datatype(), kXsdInteger);
  EXPECT_TRUE(g.triples()[2].subject.is_blank());
  EXPECT_EQ(g.triples()[2].object.lang(), "en");
}

TEST(Parser, ParsesTurtleAbbreviations) {
  const auto result = ParseTurtle(R"(
@prefix ex: <http://example.org/> .
@prefix sosa: <http://www.w3.org/ns/sosa/> .
# a comment
ex:station1 a sosa:Platform ;
    sosa:hosts ex:sensor1, ex:sensor2 ;
    ex:label "Station 1" .
ex:sensor1 sosa:observes ex:obs1 .
)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Graph& g = result.value();
  ASSERT_EQ(g.size(), 5u);
  // 'a' expands to rdf:type.
  EXPECT_EQ(g.triples()[0].predicate.lexical(), kRdfType);
  EXPECT_EQ(g.triples()[0].object.lexical(), "http://www.w3.org/ns/sosa/Platform");
  // Object list shares subject and predicate.
  EXPECT_EQ(g.triples()[1].object.lexical(), "http://example.org/sensor1");
  EXPECT_EQ(g.triples()[2].object.lexical(), "http://example.org/sensor2");
  EXPECT_EQ(g.triples()[2].predicate.lexical(),
            "http://www.w3.org/ns/sosa/hosts");
  // Literal via ';' continuation.
  EXPECT_EQ(g.triples()[3].object.lexical(), "Station 1");
}

TEST(Parser, ParsesNumericAndBooleanAbbreviations) {
  const auto result = ParseTurtle(R"(
@prefix ex: <http://example.org/> .
ex:m1 ex:value 42 .
ex:m2 ex:value 3.75 .
ex:m3 ex:value -1.5e3 .
ex:m4 ex:flag true .
ex:m5 ex:flag false .
)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Graph& g = result.value();
  ASSERT_EQ(g.size(), 5u);
  EXPECT_EQ(g.triples()[0].object.datatype(), kXsdInteger);
  EXPECT_EQ(g.triples()[1].object.datatype(), kXsdDecimal);
  EXPECT_DOUBLE_EQ(g.triples()[1].object.AsDouble(), 3.75);
  EXPECT_EQ(g.triples()[2].object.datatype(), kXsdDouble);
  EXPECT_DOUBLE_EQ(g.triples()[2].object.AsDouble(), -1500.0);
  EXPECT_EQ(g.triples()[3].object.datatype(), kXsdBoolean);
  EXPECT_EQ(g.triples()[4].object.lexical(), "false");
}

TEST(Parser, RoundTripsThroughNTriples) {
  Graph g;
  g.Add(Term::Iri("http://e.org/s"), Term::Iri("http://e.org/p"),
        Term::Literal("x \"quoted\"\nline", kXsdString));
  g.Add(Term::Blank("b1"), Term::Iri(kRdfType), Term::Iri("http://e.org/C"));
  const auto reparsed = ParseNTriples(g.ToNTriples());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed.value().size(), 2u);
  EXPECT_EQ(reparsed.value().triples()[0], g.triples()[0]);
  EXPECT_EQ(reparsed.value().triples()[1], g.triples()[1]);
}

TEST(Parser, ReportsErrorsWithLineNumbers) {
  const auto r1 = ParseTurtle("<http://e.org/s> <http://e.org/p> .\n");
  ASSERT_FALSE(r1.ok());
  EXPECT_TRUE(r1.status().IsParseError());

  const auto r2 = ParseTurtle("ex:a ex:b ex:c .");
  ASSERT_FALSE(r2.ok());  // unknown prefix
  EXPECT_NE(r2.status().message().find("unknown prefix"), std::string::npos);

  const auto r3 = ParseTurtle("<http://e.org/s> <http://e.org/p> \"unterm .");
  ASSERT_FALSE(r3.ok());
}

TEST(Parser, TrailingSemicolonAndDotLocalNames) {
  const auto result = ParseTurtle(R"(
@prefix ex: <http://example.org/> .
ex:a ex:p ex:b ; .
)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().size(), 1u);
}

TEST(Graph, MergeAndTruncate) {
  Graph a;
  a.Add(Term::Iri("http://e/1"), Term::Iri("http://e/p"), Term::Iri("http://e/2"));
  Graph b;
  b.Add(Term::Iri("http://e/3"), Term::Iri("http://e/p"), Term::Iri("http://e/4"));
  a.Merge(b);
  EXPECT_EQ(a.size(), 2u);
  a.Truncate(1);
  EXPECT_EQ(a.size(), 1u);
  a.Truncate(50);  // no-op beyond size
  EXPECT_EQ(a.size(), 1u);
}

}  // namespace
}  // namespace sedge::rdf
