#!/usr/bin/env bash
# Run the repo's clang-tidy gate locally, the same way CI does.
#
# Usage: tools/tidy.sh [build-dir]
#
# Needs a configured build dir with compile_commands.json (the top-level
# CMakeLists exports it unconditionally):
#   cmake -S . -B build
# Checks and their rationale live in .clang-tidy; WarningsAsErrors makes
# any finding a non-zero exit.

set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "${REPO_ROOT}"

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "error: ${BUILD_DIR}/compile_commands.json not found." >&2
  echo "       configure first: cmake -S . -B ${BUILD_DIR}" >&2
  exit 2
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "error: clang-tidy not on PATH" >&2
  exit 2
fi

# Library sources only: tests/bench/examples are compiled with the same
# warnings but gtest/benchmark macros trip checks we can't annotate.
mapfile -t SOURCES < <(find src -name '*.cc' | sort)

echo "clang-tidy over ${#SOURCES[@]} translation units (config: .clang-tidy)"

# run-clang-tidy parallelizes across cores when available; otherwise fall
# back to a serial loop with the same semantics (fail on first finding is
# NOT desired — collect everything, then report).
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p "${BUILD_DIR}" -quiet "${SOURCES[@]}"
else
  status=0
  for tu in "${SOURCES[@]}"; do
    clang-tidy -p "${BUILD_DIR}" --quiet "${tu}" || status=1
  done
  exit "${status}"
fi
